//! A small SMILES parser producing labeled molecular graphs.
//!
//! The paper's DrugBank dataset enters the solver as graphs derived from
//! SMILES strings (Section VI-B). This module implements the subset of the
//! SMILES grammar needed for typical drug-like molecules so that users can
//! feed real structures to the kernel in addition to the synthetic
//! generator:
//!
//! * organic-subset atoms `B C N O P S F Cl Br I` and their aromatic
//!   lowercase forms `b c n o p s`;
//! * bracket atoms with an optional charge, e.g. `[N+]`, `[O-]`;
//! * single/double/triple/aromatic bonds `- = # :`;
//! * branches `( … )` and ring-closure digits `1`–`9` (including the
//!   two-digit `%nn` form).
//!
//! Hydrogens are implicit and not materialized (the paper's graphs use
//! heavy atoms only).

use crate::molecules::MoleculeGraph;
use mgk_graph::{AtomLabel, BondLabel, Element, GraphBuilder};

/// Errors produced while parsing a SMILES string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmilesError {
    /// An unknown or unsupported character was encountered.
    UnexpectedCharacter {
        /// Byte offset in the input.
        position: usize,
        /// The offending character.
        character: char,
    },
    /// A branch `(` was never closed, or a `)` had no matching `(`.
    UnbalancedBranch,
    /// A ring-closure digit was opened but never closed.
    UnclosedRing(u8),
    /// A bond symbol was not followed by an atom.
    DanglingBond,
    /// A bracket atom was not terminated by `]`.
    UnterminatedBracket,
    /// The string contains no atoms.
    Empty,
}

impl std::fmt::Display for SmilesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmilesError::UnexpectedCharacter { position, character } => {
                write!(f, "unexpected character {character:?} at position {position}")
            }
            SmilesError::UnbalancedBranch => write!(f, "unbalanced branch parentheses"),
            SmilesError::UnclosedRing(d) => write!(f, "ring closure {d} never closed"),
            SmilesError::DanglingBond => write!(f, "bond symbol not followed by an atom"),
            SmilesError::UnterminatedBracket => write!(f, "bracket atom not terminated by ']'"),
            SmilesError::Empty => write!(f, "SMILES string contains no atoms"),
        }
    }
}

impl std::error::Error for SmilesError {}

/// Parse a SMILES string into a labeled molecular graph.
pub fn parse_smiles(input: &str) -> Result<MoleculeGraph, SmilesError> {
    let chars: Vec<char> = input.trim().chars().collect();
    let mut atoms: Vec<AtomLabel> = Vec::new();
    let mut bonds: Vec<(usize, usize, u8, bool)> = Vec::new();

    let mut prev_atom: Option<usize> = None;
    let mut branch_stack: Vec<Option<usize>> = Vec::new();
    let mut pending_bond: Option<u8> = None;
    let mut pending_aromatic_bond = false;
    // ring closure number -> (atom index, bond order at opening, aromatic)
    let mut open_rings: std::collections::HashMap<u8, (usize, u8, bool)> =
        std::collections::HashMap::new();

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            // --- bonds -------------------------------------------------
            '-' => {
                pending_bond = Some(1);
                i += 1;
            }
            '=' => {
                pending_bond = Some(2);
                i += 1;
            }
            '#' => {
                pending_bond = Some(3);
                i += 1;
            }
            ':' => {
                pending_bond = Some(1);
                pending_aromatic_bond = true;
                i += 1;
            }
            '/' | '\\' => {
                // stereo bonds are treated as plain single bonds
                pending_bond = Some(1);
                i += 1;
            }
            // --- branches ------------------------------------------------
            '(' => {
                branch_stack.push(prev_atom);
                i += 1;
            }
            ')' => {
                prev_atom = branch_stack.pop().ok_or(SmilesError::UnbalancedBranch)?;
                i += 1;
            }
            // --- ring closures -------------------------------------------
            '1'..='9' | '%' => {
                let (digit, consumed) = if c == '%' {
                    if i + 2 >= chars.len()
                        || !chars[i + 1].is_ascii_digit()
                        || !chars[i + 2].is_ascii_digit()
                    {
                        return Err(SmilesError::UnexpectedCharacter { position: i, character: c });
                    }
                    (
                        (chars[i + 1].to_digit(10).unwrap() * 10
                            + chars[i + 2].to_digit(10).unwrap()) as u8,
                        3,
                    )
                } else {
                    (c.to_digit(10).unwrap() as u8, 1)
                };
                let current = prev_atom.ok_or(SmilesError::DanglingBond)?;
                let order = pending_bond.take().unwrap_or(1);
                let aromatic = pending_aromatic_bond || atoms[current].aromatic;
                pending_aromatic_bond = false;
                match open_rings.remove(&digit) {
                    Some((other, opening_order, opening_aromatic)) => {
                        let order = order.max(opening_order);
                        let aromatic = aromatic
                            || opening_aromatic
                            || atoms[other].aromatic && atoms[current].aromatic;
                        bonds.push((other, current, order, aromatic));
                    }
                    None => {
                        open_rings.insert(digit, (current, order, aromatic));
                    }
                }
                i += consumed;
            }
            // --- atoms ---------------------------------------------------
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or(SmilesError::UnterminatedBracket)?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let label = parse_bracket_atom(&body)
                    .ok_or(SmilesError::UnexpectedCharacter { position: i, character: '[' })?;
                let idx = push_atom(&mut atoms, label);
                connect(
                    &mut bonds,
                    &mut prev_atom,
                    idx,
                    &mut pending_bond,
                    &mut pending_aromatic_bond,
                    &atoms,
                );
                i = close + 1;
            }
            _ => {
                // organic subset atom (possibly two characters: Cl, Br)
                let (element, aromatic, consumed) = match c {
                    'C' if chars.get(i + 1) == Some(&'l') => (Element::CHLORINE, false, 2),
                    'B' if chars.get(i + 1) == Some(&'r') => (Element(35), false, 2),
                    'C' => (Element::CARBON, false, 1),
                    'N' => (Element::NITROGEN, false, 1),
                    'O' => (Element::OXYGEN, false, 1),
                    'P' => (Element::PHOSPHORUS, false, 1),
                    'S' => (Element::SULFUR, false, 1),
                    'F' => (Element::FLUORINE, false, 1),
                    'I' => (Element(53), false, 1),
                    'B' => (Element(5), false, 1),
                    'c' => (Element::CARBON, true, 1),
                    'n' => (Element::NITROGEN, true, 1),
                    'o' => (Element::OXYGEN, true, 1),
                    's' => (Element::SULFUR, true, 1),
                    'b' => (Element(5), true, 1),
                    'p' => (Element::PHOSPHORUS, true, 1),
                    'H' => {
                        // explicit hydrogens outside brackets are skipped
                        i += 1;
                        continue;
                    }
                    other => {
                        return Err(SmilesError::UnexpectedCharacter {
                            position: i,
                            character: other,
                        })
                    }
                };
                let label = AtomLabel {
                    element,
                    charge: 0,
                    hybridization: if aromatic { 2 } else { 3 },
                    aromatic,
                };
                let idx = push_atom(&mut atoms, label);
                connect(
                    &mut bonds,
                    &mut prev_atom,
                    idx,
                    &mut pending_bond,
                    &mut pending_aromatic_bond,
                    &atoms,
                );
                i += consumed;
            }
        }
    }

    if pending_bond.is_some() {
        return Err(SmilesError::DanglingBond);
    }
    if !branch_stack.is_empty() {
        return Err(SmilesError::UnbalancedBranch);
    }
    if let Some((&digit, _)) = open_rings.iter().next() {
        return Err(SmilesError::UnclosedRing(digit));
    }
    if atoms.is_empty() {
        return Err(SmilesError::Empty);
    }

    let mut builder: GraphBuilder<AtomLabel, BondLabel> =
        GraphBuilder::with_capacity(atoms.len(), bonds.len());
    for label in &atoms {
        builder.add_vertex(*label);
    }
    for &(u, v, order, conjugated) in &bonds {
        let order = if conjugated { 4 } else { order };
        builder
            .add_edge(u, v, 1.0, BondLabel { order, conjugated })
            .map_err(|_| SmilesError::UnexpectedCharacter { position: 0, character: '?' })?;
    }
    builder.build().map_err(|_| SmilesError::UnexpectedCharacter { position: 0, character: '?' })
}

fn push_atom(atoms: &mut Vec<AtomLabel>, label: AtomLabel) -> usize {
    atoms.push(label);
    atoms.len() - 1
}

fn connect(
    bonds: &mut Vec<(usize, usize, u8, bool)>,
    prev_atom: &mut Option<usize>,
    current: usize,
    pending_bond: &mut Option<u8>,
    pending_aromatic: &mut bool,
    atoms: &[AtomLabel],
) {
    if let Some(prev) = *prev_atom {
        let order = pending_bond.take().unwrap_or(1);
        let aromatic = *pending_aromatic || (atoms[prev].aromatic && atoms[current].aromatic);
        bonds.push((prev, current, order, aromatic));
    } else {
        pending_bond.take();
    }
    *pending_aromatic = false;
    *prev_atom = Some(current);
}

/// Parse the body of a bracket atom, e.g. `N+`, `O-`, `nH`, `13CH3`.
fn parse_bracket_atom(body: &str) -> Option<AtomLabel> {
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    // skip an isotope number
    while i < chars.len() && chars[i].is_ascii_digit() {
        i += 1;
    }
    if i >= chars.len() {
        return None;
    }
    // element symbol: one uppercase + optional lowercase, or a lowercase aromatic
    let (element, aromatic) = if chars[i].is_uppercase() {
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let (sym, len) = if two.len() == 2 && two.chars().nth(1).unwrap().is_lowercase() {
            // only accept known two-letter symbols; otherwise a single letter
            match two.as_str() {
                "Cl" | "Br" | "Si" | "Se" | "Na" | "Li" | "Mg" | "Ca" | "Fe" | "Zn" => {
                    (two.clone(), 2)
                }
                _ => (two[..1].to_string(), 1),
            }
        } else {
            (two[..1].to_string(), 1)
        };
        i += len;
        (element_from_symbol(&sym)?, false)
    } else {
        let sym = chars[i].to_string();
        i += 1;
        (element_from_symbol(&sym.to_uppercase())?, true)
    };
    // optional explicit hydrogens (ignored) and charge
    let mut charge: i8 = 0;
    while i < chars.len() {
        match chars[i] {
            'H' => {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            '+' => {
                charge += 1;
                i += 1;
                if i < chars.len() && chars[i].is_ascii_digit() {
                    charge = chars[i].to_digit(10).unwrap() as i8;
                    i += 1;
                }
            }
            '-' => {
                charge -= 1;
                i += 1;
                if i < chars.len() && chars[i].is_ascii_digit() {
                    charge = -(chars[i].to_digit(10).unwrap() as i8);
                    i += 1;
                }
            }
            '@' | ':' => {
                // chirality markers and atom maps are ignored
                i += 1;
                while i < chars.len() && (chars[i] == '@' || chars[i].is_ascii_digit()) {
                    i += 1;
                }
            }
            _ => return None,
        }
    }
    Some(AtomLabel { element, charge, hybridization: if aromatic { 2 } else { 3 }, aromatic })
}

fn element_from_symbol(sym: &str) -> Option<Element> {
    Some(match sym {
        "H" => Element::HYDROGEN,
        "B" => Element(5),
        "C" => Element::CARBON,
        "N" => Element::NITROGEN,
        "O" => Element::OXYGEN,
        "F" => Element::FLUORINE,
        "P" => Element::PHOSPHORUS,
        "S" => Element::SULFUR,
        "Cl" => Element::CHLORINE,
        "Br" => Element(35),
        "I" => Element(53),
        "Si" => Element(14),
        "Se" => Element(34),
        "Na" => Element(11),
        "Li" => Element(3),
        "Mg" => Element(12),
        "Ca" => Element(20),
        "Fe" => Element(26),
        "Zn" => Element(30),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::GraphStats;

    #[test]
    fn ethanol() {
        let g = parse_smiles("CCO").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.vertex_label(2).element, Element::OXYGEN);
        assert_eq!(g.edge_label(0, 1).unwrap().order, 1);
    }

    #[test]
    fn acetic_acid_with_branch_and_double_bond() {
        let g = parse_smiles("CC(=O)O").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        // the carbonyl oxygen is double-bonded to the branching carbon
        assert_eq!(g.edge_label(1, 2).unwrap().order, 2);
        assert_eq!(g.edge_label(1, 3).unwrap().order, 1);
        // vertex 0 connects only to vertex 1
        assert_eq!(g.vertex_degree(0), 1);
        assert_eq!(g.vertex_degree(1), 3);
    }

    #[test]
    fn cyclohexane_ring_closure() {
        let g = parse_smiles("C1CCCCC1").unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        for i in 0..6 {
            assert_eq!(g.vertex_degree(i), 2);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn benzene_is_aromatic() {
        let g = parse_smiles("c1ccccc1").unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        for i in 0..6 {
            assert!(g.vertex_label(i).aromatic);
        }
        for (_, _, _, l) in g.edges() {
            assert!(l.conjugated);
            assert_eq!(l.order, 4);
        }
    }

    #[test]
    fn charged_bracket_atoms() {
        let g = parse_smiles("[NH4+]").unwrap();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.vertex_label(0).charge, 1);
        let g = parse_smiles("C[O-]").unwrap();
        assert_eq!(g.vertex_label(1).charge, -1);
    }

    #[test]
    fn caffeine_parses_to_the_right_size() {
        // caffeine: 14 heavy atoms
        let g = parse_smiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap();
        assert_eq!(g.num_vertices(), 14);
        assert!(g.is_connected());
        let stats = GraphStats::of(&g);
        assert!(stats.max_degree <= 4);
        // two fused rings: edges = atoms + rings - 1 = 14 + 2 - 1
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn aspirin_parses() {
        let g = parse_smiles("CC(=O)Oc1ccccc1C(=O)O").unwrap();
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.num_edges(), 13); // one ring
        assert!(g.is_connected());
    }

    #[test]
    fn two_digit_ring_closure() {
        let g = parse_smiles("C%10CCCCC%10").unwrap();
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn halogenated_molecule() {
        let g = parse_smiles("ClC(Cl)(F)Br").unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.vertex_label(0).element, Element::CHLORINE);
        assert_eq!(g.vertex_label(4).element, Element(35));
        assert_eq!(g.vertex_degree(1), 4);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_smiles(""), Err(SmilesError::Empty));
        assert!(matches!(parse_smiles("C(C"), Err(SmilesError::UnbalancedBranch)));
        assert!(matches!(parse_smiles("CC)"), Err(SmilesError::UnbalancedBranch)));
        assert!(matches!(parse_smiles("C1CC"), Err(SmilesError::UnclosedRing(1))));
        assert!(matches!(parse_smiles("C="), Err(SmilesError::DanglingBond)));
        assert!(matches!(parse_smiles("C[N"), Err(SmilesError::UnterminatedBracket)));
        assert!(matches!(parse_smiles("CXC"), Err(SmilesError::UnexpectedCharacter { .. })));
    }

    #[test]
    fn parsed_molecules_work_with_the_kernel_solver() {
        // smoke test: the parsed labels plug straight into the solver path
        let ethanol = parse_smiles("CCO").unwrap();
        let propanol = parse_smiles("CCCO").unwrap();
        use mgk_graph::GraphStats;
        assert!(GraphStats::of(&ethanol).connected);
        assert!(GraphStats::of(&propanol).connected);
    }
}
