//! Synthetic drug-like molecular graphs (stand-in for the paper's DrugBank
//! dataset).
//!
//! The generator grows a connected molecular graph atom by atom under
//! valence constraints, occasionally closes rings, and assigns bond orders
//! and per-atom attributes (element, charge, hybridization, aromaticity) —
//! the attribute set Section VI-B extracts from SMILES strings. Sizes
//! follow a heavy-tailed distribution from 1 to several hundred heavy
//! atoms, mimicking the 1–551 range the paper reports for DrugBank, which
//! is what makes block-level tile sharing and dynamic scheduling matter in
//! Fig. 9.

use mgk_graph::{AtomLabel, BondLabel, Element, Graph, GraphBuilder};
use rand::Rng;

/// A synthetic molecule: the labeled graph plus a SMILES-like size class
/// tag used in reports.
pub type MoleculeGraph = Graph<AtomLabel, BondLabel>;

/// Relative element frequencies of drug-like molecules.
fn random_element<R: Rng + ?Sized>(rng: &mut R) -> Element {
    match rng.gen_range(0..100) {
        0..=64 => Element::CARBON,
        65..=76 => Element::NITROGEN,
        77..=88 => Element::OXYGEN,
        89..=92 => Element::SULFUR,
        93..=95 => Element::FLUORINE,
        96..=97 => Element::CHLORINE,
        _ => Element::PHOSPHORUS,
    }
}

/// Generate one connected molecule-like graph with `num_atoms` heavy atoms.
pub fn synthetic_molecule<R: Rng + ?Sized>(num_atoms: usize, rng: &mut R) -> MoleculeGraph {
    assert!(num_atoms >= 1);
    let elements: Vec<Element> = (0..num_atoms).map(|_| random_element(rng)).collect();
    let mut remaining_valence: Vec<i32> = elements.iter().map(|e| e.max_valence() as i32).collect();

    let mut builder: GraphBuilder<AtomLabel, BondLabel> =
        GraphBuilder::with_capacity(num_atoms, num_atoms + num_atoms / 4);
    let mut aromatic = vec![false; num_atoms];

    // grow a random spanning tree under valence constraints
    let mut edges: Vec<(usize, usize, u8)> = Vec::new();
    for v in 1..num_atoms {
        // attach to a previous atom that still has free valence; fall back
        // to the previous atom if none has (degenerate, but keeps the graph
        // connected)
        let candidates: Vec<usize> = (0..v).filter(|&u| remaining_valence[u] > 0).collect();
        let anchor = if candidates.is_empty() {
            v - 1
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        // bond order limited by both atoms' remaining valence
        let max_order = remaining_valence[anchor].min(remaining_valence[v]).clamp(1, 3) as u8;
        let order =
            if max_order > 1 && rng.gen_bool(0.2) { rng.gen_range(2..=max_order) } else { 1 };
        remaining_valence[anchor] -= order as i32;
        remaining_valence[v] -= order as i32;
        edges.push((anchor, v, order));
    }

    // close a few rings between atoms with spare valence
    let ring_attempts = num_atoms / 6;
    for _ in 0..ring_attempts {
        if num_atoms < 5 {
            break;
        }
        let u = rng.gen_range(0..num_atoms);
        let w = rng.gen_range(0..num_atoms);
        if u == w || remaining_valence[u] < 1 || remaining_valence[w] < 1 {
            continue;
        }
        if edges.iter().any(|&(a, b, _)| (a == u && b == w) || (a == w && b == u)) {
            continue;
        }
        remaining_valence[u] -= 1;
        remaining_valence[w] -= 1;
        edges.push((u.min(w), u.max(w), 1));
        // mark small aromatic systems occasionally
        if rng.gen_bool(0.5) {
            aromatic[u] = true;
            aromatic[w] = true;
        }
    }

    for (i, &element) in elements.iter().enumerate() {
        let charge = if rng.gen_bool(0.03) {
            if rng.gen_bool(0.5) {
                1
            } else {
                -1
            }
        } else {
            0
        };
        let hybridization = match element.max_valence() {
            1 => 3,
            _ => rng.gen_range(1..=3),
        };
        builder.add_vertex(AtomLabel { element, charge, hybridization, aromatic: aromatic[i] });
    }
    for (u, v, order) in edges {
        let conjugated = aromatic[u] && aromatic[v];
        builder
            .add_edge(u, v, 1.0, BondLabel { order, conjugated })
            .expect("molecule generator produced a valid edge");
    }
    builder.stopping_probability(mgk_graph::DEFAULT_STOPPING_PROBABILITY);
    builder.build().expect("molecule generator produced a valid graph")
}

/// Generate a DrugBank-like ensemble of `count` molecules with a
/// heavy-tailed size distribution between `min_atoms` and `max_atoms`.
pub fn drugbank_like<R: Rng + ?Sized>(
    count: usize,
    min_atoms: usize,
    max_atoms: usize,
    rng: &mut R,
) -> Vec<MoleculeGraph> {
    assert!(min_atoms >= 1 && max_atoms >= min_atoms);
    (0..count)
        .map(|_| {
            // log-uniform sizes: most molecules are small, a few are very large
            let lo = (min_atoms as f64).ln();
            let hi = (max_atoms as f64 + 1.0).ln();
            let n = (lo + rng.gen::<f64>() * (hi - lo)).exp().floor() as usize;
            synthetic_molecule(n.clamp(min_atoms, max_atoms), rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::{EnsembleStats, GraphStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn molecules_respect_valence_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(2..60);
            let mol = synthetic_molecule(n, &mut rng);
            assert_eq!(mol.num_vertices(), n);
            assert!(mol.is_connected(), "molecule must be connected");
            for i in 0..n {
                // total bond order at an atom must not exceed its valence by
                // more than the tree-fallback slack of 1 bond
                let bond_order: u32 = mol.neighbors(i).map(|e| e.label.order as u32).sum();
                let max = mol.vertex_label(i).element.max_valence() as u32;
                assert!(
                    bond_order <= max + 1,
                    "atom {i} ({:?}) exceeds valence: {bond_order} > {max}",
                    mol.vertex_label(i).element
                );
            }
        }
    }

    #[test]
    fn single_atom_molecule_is_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let mol = synthetic_molecule(1, &mut rng);
        assert_eq!(mol.num_vertices(), 1);
        assert_eq!(mol.num_edges(), 0);
    }

    #[test]
    fn molecular_graphs_have_low_max_degree() {
        // Section IV: "the maximum number of edges on each node is capped by
        // the maximum number of bonds an atom can form, which rarely
        // exceeds 8"
        let mut rng = StdRng::seed_from_u64(11);
        let mol = synthetic_molecule(200, &mut rng);
        let stats = GraphStats::of(&mol);
        assert!(stats.max_degree <= 8, "max degree {}", stats.max_degree);
        assert!(stats.density < 0.1);
    }

    #[test]
    fn drugbank_like_sizes_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(13);
        let set = drugbank_like(200, 1, 300, &mut rng);
        let stats = EnsembleStats::of(&set);
        assert_eq!(stats.num_graphs, 200);
        assert!(stats.min_vertices >= 1);
        assert!(stats.max_vertices > 100, "expect a large molecule in the tail");
        // median well below the mean of min/max: skewed distribution
        let mut sizes: Vec<usize> = set.iter().map(|g| g.num_vertices()).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            (median as f64) < 0.35 * stats.max_vertices as f64,
            "median {median} vs max {}",
            stats.max_vertices
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = drugbank_like(5, 2, 50, &mut StdRng::seed_from_u64(42));
        let b = drugbank_like(5, 2, 50, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
