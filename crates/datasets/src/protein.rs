//! Synthetic 3D protein-like structures (stand-in for the paper's PDB-3k
//! dataset).
//!
//! Each structure is generated as a folded backbone — a self-avoiding
//! random walk with bond length ~1.5 Å and a bias that folds it into a
//! compact globule — plus a small number of side-chain atoms attached to
//! backbone sites. The graph is then built with the paper's spatial
//! adjacency rule (Section VI-B): edges connect atoms closer than a cutoff
//! distance, the weight decays smoothly from 1 (overlapping) to 0 (at the
//! cutoff), and the edge label carries the interatomic distance.

use mgk_graph::{generators, Element, Graph};
use rand::Rng;

/// One synthetic protein structure: the labeled graph plus the raw atom
/// coordinates (used by the space-filling-curve reorderings).
#[derive(Debug, Clone)]
pub struct ProteinStructure {
    /// Spatial-adjacency graph: elements on vertices, interatomic distances
    /// on edges.
    pub graph: Graph<Element, f32>,
    /// Atom coordinates in Å.
    pub coordinates: Vec<[f32; 3]>,
}

/// Distance cutoff (Å) of the spatial adjacency rule.
pub const CONTACT_CUTOFF: f32 = 3.5;

/// Generate one protein-like structure with approximately `num_atoms`
/// heavy atoms.
pub fn synthetic_structure<R: Rng + ?Sized>(num_atoms: usize, rng: &mut R) -> ProteinStructure {
    assert!(num_atoms >= 2, "a structure needs at least two atoms");
    // number of backbone sites; roughly 2/3 of atoms are backbone
    let backbone_len = (num_atoms * 2 / 3).max(2);
    let mut coords: Vec<[f32; 3]> = Vec::with_capacity(num_atoms);
    let mut elements: Vec<Element> = Vec::with_capacity(num_atoms);

    // folded backbone: a biased random walk with step ~1.5 Å that is pulled
    // back toward the centroid so the chain collapses into a globule
    let mut pos = [0.0f32; 3];
    let mut centroid = [0.0f32; 3];
    for k in 0..backbone_len {
        coords.push(pos);
        // alternate C and N along the backbone with occasional O
        elements.push(match k % 5 {
            0 | 2 => Element::CARBON,
            1 => Element::NITROGEN,
            3 => Element::CARBON,
            _ => Element::OXYGEN,
        });
        for a in 0..3 {
            centroid[a] += (pos[a] - centroid[a]) / (k + 1) as f32;
        }
        // propose the next position: random direction + a gentle pull toward
        // the centroid so the chain folds, rejecting proposals that land on
        // top of an existing atom (crude self-avoidance keeps the contact
        // density realistic)
        let step = 1.5f32;
        let pull = 0.02;
        let mut accepted = pos;
        for _attempt in 0..12 {
            let mut dir = [
                rng.gen::<f32>() * 2.0 - 1.0,
                rng.gen::<f32>() * 2.0 - 1.0,
                rng.gen::<f32>() * 2.0 - 1.0,
            ];
            let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt().max(1e-6);
            for d in &mut dir {
                *d /= norm;
            }
            let candidate = [
                pos[0] + step * dir[0] + pull * (centroid[0] - pos[0]),
                pos[1] + step * dir[1] + pull * (centroid[1] - pos[1]),
                pos[2] + step * dir[2] + pull * (centroid[2] - pos[2]),
            ];
            accepted = candidate;
            let clash = coords.iter().rev().take(24).any(|c| {
                let dx = c[0] - candidate[0];
                let dy = c[1] - candidate[1];
                let dz = c[2] - candidate[2];
                dx * dx + dy * dy + dz * dz < 1.3 * 1.3
            });
            if !clash {
                break;
            }
        }
        pos = accepted;
    }

    // side-chain atoms: attach to random backbone sites at ~1.5 Å
    while coords.len() < num_atoms {
        let anchor = rng.gen_range(0..backbone_len);
        let base = coords[anchor];
        let offset = [
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
        ];
        let norm = (offset[0] * offset[0] + offset[1] * offset[1] + offset[2] * offset[2])
            .sqrt()
            .max(1e-6);
        coords.push([
            base[0] + 1.5 * offset[0] / norm,
            base[1] + 1.5 * offset[1] / norm,
            base[2] + 1.5 * offset[2] / norm,
        ]);
        elements.push(match rng.gen_range(0..10) {
            0..=5 => Element::CARBON,
            6 | 7 => Element::OXYGEN,
            8 => Element::NITROGEN,
            _ => Element::SULFUR,
        });
    }

    let unlabeled = generators::geometric_from_points(&coords, CONTACT_CUTOFF);
    let mut idx = 0usize;
    let graph = unlabeled.map_labels(
        |_| {
            let e = elements[idx];
            idx += 1;
            e
        },
        |&d| d,
    );
    ProteinStructure { graph, coordinates: coords }
}

/// Generate a PDB-3k-like ensemble: `count` structures whose sizes are
/// spread between `min_atoms` and `max_atoms` atoms (the paper's subset
/// keeps proteins below 3000 Da, i.e. a few hundred heavy atoms).
pub fn pdb_like<R: Rng + ?Sized>(
    count: usize,
    min_atoms: usize,
    max_atoms: usize,
    rng: &mut R,
) -> Vec<ProteinStructure> {
    assert!(min_atoms >= 2 && max_atoms >= min_atoms);
    (0..count)
        .map(|_| {
            let n = rng.gen_range(min_atoms..=max_atoms);
            synthetic_structure(n, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::GraphStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_has_requested_size_and_spatial_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = synthetic_structure(120, &mut rng);
        assert_eq!(s.graph.num_vertices(), 120);
        assert_eq!(s.coordinates.len(), 120);
        let stats = GraphStats::of(&s.graph);
        // spatial cutoff graphs are sparse but well connected locally
        assert!(stats.mean_degree > 2.0, "mean degree {}", stats.mean_degree);
        assert!(stats.density < 0.5, "density {}", stats.density);
        // edge labels are distances within the cutoff
        for (_, _, w, &d) in s.graph.edges() {
            assert!(d > 0.0 && d < CONTACT_CUTOFF);
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn backbone_gives_good_natural_locality() {
        // the chain order is the "natural" order of the PDB dataset; the
        // paper notes it already yields a near-banded adjacency pattern
        let mut rng = StdRng::seed_from_u64(5);
        let s = synthetic_structure(100, &mut rng);
        let natural: Vec<u32> = (0..100).collect();
        let natural_tiles = mgk_reorder::nonempty_tiles_of_order(&s.graph, &natural, 8);
        // a scrambled order should be clearly worse
        let scrambled: Vec<u32> = (0..100u32).map(|k| (k * 37) % 100).collect();
        let scrambled_tiles = mgk_reorder::nonempty_tiles_of_order(&s.graph, &scrambled, 8);
        assert!(
            natural_tiles < scrambled_tiles,
            "natural {natural_tiles} vs scrambled {scrambled_tiles}"
        );
    }

    #[test]
    fn ensemble_sizes_are_in_range_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let set = pdb_like(10, 40, 160, &mut rng);
        assert_eq!(set.len(), 10);
        for s in &set {
            let n = s.graph.num_vertices();
            assert!((40..=160).contains(&n));
        }
        let mut rng2 = StdRng::seed_from_u64(11);
        let set2 = pdb_like(10, 40, 160, &mut rng2);
        assert_eq!(set[3].graph, set2[3].graph);
    }

    #[test]
    fn vertex_labels_are_mostly_carbon() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = synthetic_structure(200, &mut rng);
        let carbons = s.graph.vertex_labels().iter().filter(|e| **e == Element::CARBON).count();
        assert!(carbons > 80, "expected a carbon-dominated composition, got {carbons}/200");
    }
}
