//! The synthetic graph ensembles of Section VI-A and the dense
//! micro-benchmark workload of Fig. 5, in batch and streaming form.

use mgk_graph::{generators, Graph, Unlabeled};
use rand::Rng;

/// Which random ensemble an [`EnsembleStream`] draws from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EnsembleKind {
    /// Newman–Watts–Strogatz small-world graphs.
    SmallWorld {
        /// Ring-lattice neighborhood radius `k`.
        k: usize,
        /// Shortcut probability `p`.
        p: f64,
    },
    /// Barabási–Albert scale-free graphs.
    ScaleFree {
        /// Attachment count `m`.
        m: usize,
    },
}

/// An endless stream of ensemble graphs, generated lazily.
///
/// This is the producer side of a streaming workload: a
/// `GramService`-style consumer pulls structures one at a time (applying
/// its own backpressure) instead of materializing the whole dataset up
/// front the way [`small_world`] / [`scale_free`] do. The stream is
/// deterministic given its RNG.
#[derive(Debug)]
pub struct EnsembleStream<R> {
    rng: R,
    nodes: usize,
    kind: EnsembleKind,
}

impl<R: Rng> EnsembleStream<R> {
    /// Stream of the paper's small-world ensemble graphs (`nodes` vertices,
    /// neighborhood `k`, shortcut probability `p`).
    pub fn small_world(nodes: usize, k: usize, p: f64, rng: R) -> Self {
        EnsembleStream { rng, nodes, kind: EnsembleKind::SmallWorld { k, p } }
    }

    /// Stream of the paper's scale-free ensemble graphs (`nodes` vertices,
    /// attachment `m`).
    pub fn scale_free(nodes: usize, m: usize, rng: R) -> Self {
        EnsembleStream { rng, nodes, kind: EnsembleKind::ScaleFree { m } }
    }
}

impl<R: Rng> Iterator for EnsembleStream<R> {
    type Item = Graph<Unlabeled, Unlabeled>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(match self.kind {
            EnsembleKind::SmallWorld { k, p } => {
                generators::newman_watts_strogatz(self.nodes, k, p, &mut self.rng)
            }
            EnsembleKind::ScaleFree { m } => {
                generators::barabasi_albert(self.nodes, m, &mut self.rng)
            }
        })
    }
}

/// The paper's small-world ensemble: `count` Newman–Watts–Strogatz graphs
/// with 96 nodes, `k = 3`, `p = 0.1` (Section VII-A uses `count = 160`).
pub fn small_world<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Graph<Unlabeled, Unlabeled>> {
    EnsembleStream::small_world(96, 3, 0.1, rng).take(count).collect()
}

/// The paper's scale-free ensemble: `count` Barabási–Albert graphs with 96
/// nodes and attachment `m = 6`.
pub fn scale_free<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Graph<Unlabeled, Unlabeled>> {
    EnsembleStream::scale_free(96, 6, rng).take(count).collect()
}

/// The Fig. 5 micro-benchmark workload: pairs of fully connected graphs
/// with `nodes` vertices and uniformly random edge labels (the paper uses
/// 5120 pairs of 72-node graphs).
pub fn fig5_dense_pairs<R: Rng + ?Sized>(
    pairs: usize,
    nodes: usize,
    rng: &mut R,
) -> Vec<(Graph<Unlabeled, f32>, Graph<Unlabeled, f32>)> {
    (0..pairs)
        .map(|_| {
            (generators::complete_labeled(nodes, rng), generators::complete_labeled(nodes, rng))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::EnsembleStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_world_ensemble_matches_paper_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = small_world(8, &mut rng);
        let stats = EnsembleStats::of(&set);
        assert_eq!(stats.num_graphs, 8);
        assert_eq!(stats.min_vertices, 96);
        assert_eq!(stats.max_vertices, 96);
        // ring lattice with k=3 gives 288 edges plus ~10% shortcuts
        for g in &set {
            assert!(g.num_edges() >= 288 && g.num_edges() < 340, "{} edges", g.num_edges());
        }
    }

    #[test]
    fn scale_free_ensemble_has_hubs() {
        let mut rng = StdRng::seed_from_u64(2);
        let set = scale_free(4, &mut rng);
        for g in &set {
            assert_eq!(g.num_vertices(), 96);
            let max_degree = (0..96).map(|i| g.vertex_degree(i)).max().unwrap();
            assert!(max_degree >= 15, "scale-free graph should have hubs, max degree {max_degree}");
        }
    }

    #[test]
    fn streams_are_lazy_deterministic_and_match_the_batch_helpers() {
        // the same seed through the stream and the batch helper yields the
        // same graphs (the batch helpers are thin wrappers over the stream)
        let batch = small_world(3, &mut StdRng::seed_from_u64(9));
        let streamed: Vec<_> =
            EnsembleStream::small_world(96, 3, 0.1, StdRng::seed_from_u64(9)).take(3).collect();
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.iter().zip(&streamed) {
            assert_eq!(a.num_edges(), b.num_edges());
        }

        // streams are endless: pulling more keeps producing fresh graphs
        let mut stream = EnsembleStream::scale_free(32, 4, StdRng::seed_from_u64(2));
        let many: Vec<_> = stream.by_ref().take(5).collect();
        assert_eq!(many.len(), 5);
        assert!(stream.next().is_some());
        for g in &many {
            assert_eq!(g.num_vertices(), 32);
        }
    }

    #[test]
    fn dense_pairs_are_complete_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = fig5_dense_pairs(2, 24, &mut rng);
        assert_eq!(pairs.len(), 2);
        for (a, b) in &pairs {
            assert_eq!(a.num_edges(), 24 * 23 / 2);
            assert_eq!(b.num_edges(), 24 * 23 / 2);
        }
    }
}
