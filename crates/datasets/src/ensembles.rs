//! The synthetic graph ensembles of Section VI-A and the dense
//! micro-benchmark workload of Fig. 5.

use mgk_graph::{generators, Graph, Unlabeled};
use rand::Rng;

/// The paper's small-world ensemble: `count` Newman–Watts–Strogatz graphs
/// with 96 nodes, `k = 3`, `p = 0.1` (Section VII-A uses `count = 160`).
pub fn small_world<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Graph<Unlabeled, Unlabeled>> {
    (0..count).map(|_| generators::newman_watts_strogatz(96, 3, 0.1, rng)).collect()
}

/// The paper's scale-free ensemble: `count` Barabási–Albert graphs with 96
/// nodes and attachment `m = 6`.
pub fn scale_free<R: Rng + ?Sized>(count: usize, rng: &mut R) -> Vec<Graph<Unlabeled, Unlabeled>> {
    (0..count).map(|_| generators::barabasi_albert(96, 6, rng)).collect()
}

/// The Fig. 5 micro-benchmark workload: pairs of fully connected graphs
/// with `nodes` vertices and uniformly random edge labels (the paper uses
/// 5120 pairs of 72-node graphs).
pub fn fig5_dense_pairs<R: Rng + ?Sized>(
    pairs: usize,
    nodes: usize,
    rng: &mut R,
) -> Vec<(Graph<Unlabeled, f32>, Graph<Unlabeled, f32>)> {
    (0..pairs)
        .map(|_| {
            (generators::complete_labeled(nodes, rng), generators::complete_labeled(nodes, rng))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::EnsembleStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_world_ensemble_matches_paper_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = small_world(8, &mut rng);
        let stats = EnsembleStats::of(&set);
        assert_eq!(stats.num_graphs, 8);
        assert_eq!(stats.min_vertices, 96);
        assert_eq!(stats.max_vertices, 96);
        // ring lattice with k=3 gives 288 edges plus ~10% shortcuts
        for g in &set {
            assert!(g.num_edges() >= 288 && g.num_edges() < 340, "{} edges", g.num_edges());
        }
    }

    #[test]
    fn scale_free_ensemble_has_hubs() {
        let mut rng = StdRng::seed_from_u64(2);
        let set = scale_free(4, &mut rng);
        for g in &set {
            assert_eq!(g.num_vertices(), 96);
            let max_degree = (0..96).map(|i| g.vertex_degree(i)).max().unwrap();
            assert!(max_degree >= 15, "scale-free graph should have hubs, max degree {max_degree}");
        }
    }

    #[test]
    fn dense_pairs_are_complete_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = fig5_dense_pairs(2, 24, &mut rng);
        assert_eq!(pairs.len(), 2);
        for (a, b) in &pairs {
            assert_eq!(a.num_edges(), 24 * 23 / 2);
            assert_eq!(b.num_edges(), 24 * 23 / 2);
        }
    }
}
