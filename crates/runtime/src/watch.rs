//! Versioned snapshot watch: the consumer side of the background scheduler.
//!
//! A [`SnapshotPublisher`] / [`SnapshotWatch`] pair shares one slot holding
//! the latest published snapshot *source* together with its epoch (the
//! service's snapshot [`version`](crate::GramService::version)). The
//! scheduler publishes once per completed flush — but publication is
//! **lazy**: what is published is a [`SnapshotSource`] (a triangle of raw
//! values, cheap to capture), and the O(n²) dense materialization runs on
//! the *first* [`latest`](SnapshotWatch::latest) /
//! [`wait_newer`](SnapshotWatch::wait_newer) that observes the epoch. Once
//! built, the per-epoch snapshot is cached behind an `Arc`, so repeat polls
//! cost a mutex lock and an `Arc` clone — and epochs nobody watches never
//! build a matrix at all (write-heavy, read-light loads skip the O(n²)
//! entirely; [`snapshot_builds`](SnapshotWatch::snapshot_builds) makes that
//! observable).
//!
//! The slot is a `Mutex` + `Condvar`, not a channel: consumers that fall
//! behind skip intermediate epochs and observe only the newest snapshot
//! (watch semantics), and any number of consumers can wait on the same
//! publisher. When the publisher is dropped — scheduler shutdown, or its
//! thread unwinding on a panic — the watch is closed and every blocked
//! consumer wakes with [`WatchClosed`] instead of hanging.

use std::sync::{Arc, Condvar, Mutex, OnceLock};

use mgk_telemetry::Counter;

use crate::service::{GramSnapshot, SnapshotSource};

/// A snapshot together with the epoch it was published at.
#[derive(Debug, Clone)]
pub struct VersionedSnapshot {
    /// The publisher's epoch for this snapshot (monotonically increasing).
    pub epoch: u64,
    /// The published Gram matrix, shared — cloning is pointer-cheap.
    pub snapshot: Arc<GramSnapshot>,
}

/// Error returned by [`SnapshotWatch::wait_newer`] when the publisher is
/// gone and no snapshot newer than the requested epoch will ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchClosed;

impl std::fmt::Display for WatchClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot publisher closed; no newer snapshot will be published")
    }
}

impl std::error::Error for WatchClosed {}

/// One published epoch: the source, and the dense snapshot once some
/// consumer demanded it. The build *consumes* the source (it is dead
/// weight next to the dense matrix once materialized), so a retained epoch
/// holds either the triangle or the matrix, never both — and a source the
/// publisher [retired](SnapshotPublisher::retire_unobserved) before anyone
/// built it holds neither (`materialize` then reports `None` and waiters
/// keep waiting for the successor epoch that is already being flushed).
#[derive(Debug)]
struct PublishedEpoch {
    source: Mutex<Option<SnapshotSource>>,
    built: OnceLock<Arc<GramSnapshot>>,
}

impl PublishedEpoch {
    fn new(source: SnapshotSource) -> Self {
        PublishedEpoch { source: Mutex::new(Some(source)), built: OnceLock::new() }
    }

    /// The materialized snapshot, building it on first demand (counted in
    /// `builds`), or `None` if the publisher retired the source before any
    /// consumer observed this epoch.
    ///
    /// The source mutex is held across the build so a concurrent retirement
    /// cannot yank the triangle from under the building consumer: whoever
    /// locks first wins, the other sees the outcome.
    fn materialize(&self, builds: &Counter) -> Option<Arc<GramSnapshot>> {
        if let Some(built) = self.built.get() {
            return Some(Arc::clone(built));
        }
        let mut source = self.source.lock().unwrap();
        // a concurrent first observer may have built while this consumer
        // waited on the lock
        if let Some(built) = self.built.get() {
            return Some(Arc::clone(built));
        }
        let taken = source.take()?;
        builds.inc();
        let built = Arc::new(taken.build());
        self.built.set(Arc::clone(&built)).expect("first build under the source lock");
        drop(source);
        Some(built)
    }

    /// Whether some consumer has materialized this epoch.
    fn is_built(&self) -> bool {
        self.built.get().is_some()
    }
}

#[derive(Debug)]
struct Slot {
    epoch: u64,
    published: Option<Arc<PublishedEpoch>>,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    slot: Mutex<Slot>,
    newer: Condvar,
    /// Dense materializations performed across all epochs (observability
    /// for the lazy-publication contract: unwatched epochs build nothing).
    /// A telemetry counter so the scheduler can register the same cell in
    /// its service's metrics registry (`mgk_snapshot_builds_total`).
    builds: Counter,
}

/// Consumer handle of a snapshot watch; cheap to clone, any number of
/// consumers may poll or wait concurrently.
#[derive(Debug, Clone)]
pub struct SnapshotWatch {
    shared: Arc<Shared>,
}

/// Producer handle of a snapshot watch. Not cloneable: one publisher per
/// watch, and dropping it closes the watch.
#[derive(Debug)]
pub struct SnapshotPublisher {
    shared: Arc<Shared>,
}

/// Create a connected publisher/watch pair. The watch starts at epoch 0
/// with no snapshot; the first [`publish`](SnapshotPublisher::publish)
/// makes one visible. The build counter is a detached telemetry cell; use
/// [`snapshot_channel_counted`] to share one that a registry already
/// holds.
pub fn snapshot_channel() -> (SnapshotPublisher, SnapshotWatch) {
    snapshot_channel_counted(Counter::new())
}

/// [`snapshot_channel`] with a caller-provided build counter — the
/// scheduler passes its registry's `mgk_snapshot_builds_total` cell here,
/// so [`SnapshotWatch::snapshot_builds`] and the scraped registry read the
/// same number.
pub fn snapshot_channel_counted(builds: Counter) -> (SnapshotPublisher, SnapshotWatch) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(Slot { epoch: 0, published: None, closed: false }),
        newer: Condvar::new(),
        builds,
    });
    (SnapshotPublisher { shared: Arc::clone(&shared) }, SnapshotWatch { shared })
}

impl SnapshotWatch {
    /// The epoch of the most recently published snapshot (0 before the
    /// first publication).
    pub fn epoch(&self) -> u64 {
        self.shared.slot.lock().unwrap().epoch
    }

    /// Whether the publisher is gone (no newer snapshot will arrive).
    pub fn is_closed(&self) -> bool {
        self.shared.slot.lock().unwrap().closed
    }

    /// How many dense snapshot materializations this watch has performed.
    /// Publication is lazy, so epochs that no consumer observed contribute
    /// nothing here.
    pub fn snapshot_builds(&self) -> u64 {
        self.shared.builds.value()
    }

    /// The latest published snapshot, without blocking for a newer one.
    ///
    /// The first call per epoch materializes the dense matrix from the
    /// published source; repeat polls of the same epoch cost a mutex lock
    /// and an `Arc` clone. During the brief window in which the publisher
    /// has retired an epoch nobody observed and its successor's flush is
    /// still running, there is nothing to materialize and `None` is
    /// returned (exactly as before the first publication).
    pub fn latest(&self) -> Option<VersionedSnapshot> {
        let (epoch, published) = {
            let slot = self.shared.slot.lock().unwrap();
            (slot.epoch, slot.published.as_ref().map(Arc::clone))
        };
        // build outside the slot lock: a large materialization must not
        // block the publisher or other consumers on different epochs
        published.and_then(|p| {
            Some(VersionedSnapshot { epoch, snapshot: p.materialize(&self.shared.builds)? })
        })
    }

    /// Block until a snapshot with an epoch strictly newer than `epoch` is
    /// published, and return it (materializing it if this is the first
    /// observation of that epoch).
    ///
    /// A consumer that starts at `epoch = 0` and feeds each returned epoch
    /// back in observes every epoch it can keep up with exactly once; a
    /// consumer that falls behind skips straight to the newest. Returns
    /// [`WatchClosed`] once the publisher is gone and nothing newer than
    /// `epoch` was ever published.
    pub fn wait_newer(&self, epoch: u64) -> Result<VersionedSnapshot, WatchClosed> {
        self.wait_newer_until(epoch, None)
            .map(|v| v.expect("an unbounded wait only returns with a snapshot or closure"))
    }

    /// [`wait_newer`](Self::wait_newer) with a timeout: `Ok(None)` if no
    /// strictly newer snapshot was published within `timeout`. A cluster
    /// watch waits on its shards round-robin through this, so progress on
    /// *any* shard is observed within one timeout slice.
    pub fn wait_newer_timeout(
        &self,
        epoch: u64,
        timeout: std::time::Duration,
    ) -> Result<Option<VersionedSnapshot>, WatchClosed> {
        self.wait_newer_until(epoch, Some(std::time::Instant::now() + timeout))
    }

    fn wait_newer_until(
        &self,
        epoch: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<Option<VersionedSnapshot>, WatchClosed> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if slot.epoch > epoch {
                if let Some(p) = &slot.published {
                    let (found, p) = (slot.epoch, Arc::clone(p));
                    drop(slot);
                    if let Some(snapshot) = p.materialize(&self.shared.builds) {
                        return Ok(Some(VersionedSnapshot { epoch: found, snapshot }));
                    }
                    // the epoch was retired unobserved while its successor
                    // flushes: re-examine the slot; if nothing newer has
                    // landed yet, fall through to the condvar wait for the
                    // successor's publication (or closure)
                    slot = self.shared.slot.lock().unwrap();
                    if slot.epoch > found {
                        continue;
                    }
                }
            }
            if slot.closed {
                return Err(WatchClosed);
            }
            match deadline {
                None => slot = self.shared.newer.wait(slot).unwrap(),
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Ok(None);
                    }
                    let (next, timeout) =
                        self.shared.newer.wait_timeout(slot, deadline - now).unwrap();
                    slot = next;
                    if timeout.timed_out() {
                        // one re-examination after the timeout: a publish
                        // that raced the wakeup must not be missed
                        continue;
                    }
                }
            }
        }
    }
}

impl SnapshotPublisher {
    /// Publish the source of a snapshot at `epoch`, waking every waiting
    /// consumer. The dense matrix is *not* built here — the first consumer
    /// to observe the epoch builds it. Epochs must be monotonically
    /// non-decreasing; a republication at the current epoch replaces the
    /// source without waking `wait_newer` callers already past it.
    pub fn publish(&self, epoch: u64, source: SnapshotSource) {
        let mut slot = self.shared.slot.lock().unwrap();
        debug_assert!(epoch >= slot.epoch, "epochs must not go backwards");
        slot.epoch = epoch;
        slot.published = Some(Arc::new(PublishedEpoch::new(source)));
        drop(slot);
        self.shared.newer.notify_all();
    }

    /// Release the current epoch's snapshot *source* if no consumer ever
    /// materialized it — called by the scheduler right before a flush that
    /// will republish, so an unwatched epoch's `Arc`-shared triangle is
    /// dropped *before* the service mutates it (unwatched flushes then
    /// never pay the copy-on-write clone; see
    /// `ServiceStats::triangle_copies`).
    ///
    /// Consumers remain safe: an already-built epoch is untouched, a
    /// consumer mid-build holds the source lock until its build lands, and
    /// a `wait_newer`/`latest` that races the retirement simply waits for
    /// (or polls until) the successor epoch the flush is about to publish.
    pub fn retire_unobserved(&self) {
        let published = {
            let slot = self.shared.slot.lock().unwrap();
            slot.published.as_ref().map(Arc::clone)
        };
        if let Some(p) = published {
            if !p.is_built() {
                // drop the triangle share; materialize() reports None to
                // any racing first observer, who then awaits the successor
                p.source.lock().unwrap().take();
            }
        }
    }

    /// Close the watch: every current and future waiter observes
    /// [`WatchClosed`] (after consuming any snapshot still newer than its
    /// request). Called automatically on drop.
    pub fn close(&self) {
        let mut slot = self.shared.slot.lock().unwrap();
        slot.closed = true;
        drop(slot);
        self.shared.newer.notify_all();
    }
}

impl Drop for SnapshotPublisher {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(n: usize) -> SnapshotSource {
        SnapshotSource::from_triangle(vec![1.0; n * (n + 1) / 2], n, false)
    }

    #[test]
    fn latest_is_none_until_first_publish() {
        let (publisher, watch) = snapshot_channel();
        assert!(watch.latest().is_none());
        assert_eq!(watch.epoch(), 0);
        publisher.publish(1, source(2));
        let v = watch.latest().unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.snapshot.num_graphs, 2);
    }

    #[test]
    fn wait_newer_returns_an_already_newer_snapshot_immediately() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(3, source(1));
        let v = watch.wait_newer(0).unwrap();
        assert_eq!(v.epoch, 3);
    }

    #[test]
    fn wait_newer_blocks_until_publication() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(1));
        let waiter = std::thread::spawn(move || watch.wait_newer(1).map(|v| v.epoch));
        // give the waiter a chance to block, then publish
        std::thread::sleep(std::time::Duration::from_millis(20));
        publisher.publish(2, source(2));
        assert_eq!(waiter.join().unwrap(), Ok(2));
    }

    #[test]
    fn close_wakes_blocked_waiters() {
        let (publisher, watch) = snapshot_channel();
        let waiter = std::thread::spawn(move || watch.wait_newer(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(publisher);
        assert_eq!(waiter.join().unwrap().unwrap_err(), WatchClosed);
    }

    #[test]
    fn a_newer_snapshot_is_still_served_after_close() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(5, source(3));
        drop(publisher);
        assert!(watch.is_closed());
        // the final snapshot is newer than the consumer's epoch: drain it …
        assert_eq!(watch.wait_newer(2).unwrap().epoch, 5);
        // … and only then report closure
        assert_eq!(watch.wait_newer(5).unwrap_err(), WatchClosed);
    }

    #[test]
    fn consumers_that_fall_behind_skip_to_the_newest_epoch() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(1));
        publisher.publish(2, source(2));
        publisher.publish(3, source(3));
        let v = watch.wait_newer(1).unwrap();
        assert_eq!(v.epoch, 3, "watch semantics: only the newest snapshot is retained");
        assert_eq!(v.snapshot.num_graphs, 3);
    }

    #[test]
    fn unwatched_epochs_never_materialize_a_snapshot() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(4));
        publisher.publish(2, source(5));
        publisher.publish(3, source(6));
        assert_eq!(watch.snapshot_builds(), 0, "publication alone must not build");
        // the first observation of epoch 3 builds exactly once …
        let v = watch.wait_newer(0).unwrap();
        assert_eq!(v.epoch, 3);
        assert_eq!(watch.snapshot_builds(), 1);
        // … and repeat polls of the same epoch reuse the cached build
        let again = watch.latest().unwrap();
        assert_eq!(again.epoch, 3);
        assert!(Arc::ptr_eq(&v.snapshot, &again.snapshot));
        assert_eq!(watch.snapshot_builds(), 1);
        // a newer epoch builds again only when observed
        publisher.publish(4, source(7));
        assert_eq!(watch.snapshot_builds(), 1);
        assert_eq!(watch.latest().unwrap().epoch, 4);
        assert_eq!(watch.snapshot_builds(), 2);
    }

    #[test]
    fn retire_unobserved_releases_the_source_and_waiters_get_the_successor() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(2));
        publisher.retire_unobserved();
        // nothing to build: the epoch was never observed and is now retired
        assert!(watch.latest().is_none());
        assert_eq!(watch.snapshot_builds(), 0);

        // a waiter in the retirement window blocks for the successor
        // instead of spinning or erroring
        let w = watch.clone();
        let waiter = std::thread::spawn(move || w.wait_newer(0).map(|v| v.epoch));
        std::thread::sleep(std::time::Duration::from_millis(20));
        publisher.publish(2, source(3));
        assert_eq!(waiter.join().unwrap(), Ok(2));
        assert_eq!(watch.snapshot_builds(), 1, "only the successor was ever built");
    }

    #[test]
    fn retire_unobserved_leaves_built_epochs_alone() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(4));
        let before = watch.latest().unwrap();
        publisher.retire_unobserved();
        let after = watch.latest().expect("a built epoch survives retirement");
        assert_eq!(after.epoch, 1);
        assert!(Arc::ptr_eq(&before.snapshot, &after.snapshot));
    }

    #[test]
    fn concurrent_first_observers_build_once() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, source(64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let w = watch.clone();
                std::thread::spawn(move || w.wait_newer(0).unwrap().snapshot.num_graphs)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 64);
        }
        assert_eq!(watch.snapshot_builds(), 1, "OnceLock must deduplicate the build");
    }
}
