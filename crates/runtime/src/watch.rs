//! Versioned snapshot watch: the consumer side of the background scheduler.
//!
//! A [`SnapshotPublisher`] / [`SnapshotWatch`] pair shares one slot holding
//! the latest published [`GramSnapshot`] together with its epoch (the
//! service's snapshot [`version`](crate::GramService::version)). The
//! scheduler publishes once per completed flush; consumers either poll
//! [`latest`](SnapshotWatch::latest) — a mutex lock and an `Arc` clone, no
//! O(n²) matrix rebuild — or block in
//! [`wait_newer`](SnapshotWatch::wait_newer) until a fresher epoch exists.
//!
//! The slot is a `Mutex` + `Condvar`, not a channel: consumers that fall
//! behind skip intermediate epochs and observe only the newest snapshot
//! (watch semantics), and any number of consumers can wait on the same
//! publisher. When the publisher is dropped — scheduler shutdown, or its
//! thread unwinding on a panic — the watch is closed and every blocked
//! consumer wakes with [`WatchClosed`] instead of hanging.

use std::sync::{Arc, Condvar, Mutex};

use crate::service::GramSnapshot;

/// A snapshot together with the epoch it was published at.
#[derive(Debug, Clone)]
pub struct VersionedSnapshot {
    /// The publisher's epoch for this snapshot (monotonically increasing).
    pub epoch: u64,
    /// The published Gram matrix, shared — cloning is pointer-cheap.
    pub snapshot: Arc<GramSnapshot>,
}

/// Error returned by [`SnapshotWatch::wait_newer`] when the publisher is
/// gone and no snapshot newer than the requested epoch will ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchClosed;

impl std::fmt::Display for WatchClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot publisher closed; no newer snapshot will be published")
    }
}

impl std::error::Error for WatchClosed {}

#[derive(Debug)]
struct Slot {
    epoch: u64,
    snapshot: Option<Arc<GramSnapshot>>,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    slot: Mutex<Slot>,
    newer: Condvar,
}

/// Consumer handle of a snapshot watch; cheap to clone, any number of
/// consumers may poll or wait concurrently.
#[derive(Debug, Clone)]
pub struct SnapshotWatch {
    shared: Arc<Shared>,
}

/// Producer handle of a snapshot watch. Not cloneable: one publisher per
/// watch, and dropping it closes the watch.
#[derive(Debug)]
pub struct SnapshotPublisher {
    shared: Arc<Shared>,
}

/// Create a connected publisher/watch pair. The watch starts at epoch 0
/// with no snapshot; the first [`publish`](SnapshotPublisher::publish)
/// makes one visible.
pub fn snapshot_channel() -> (SnapshotPublisher, SnapshotWatch) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(Slot { epoch: 0, snapshot: None, closed: false }),
        newer: Condvar::new(),
    });
    (SnapshotPublisher { shared: Arc::clone(&shared) }, SnapshotWatch { shared })
}

impl SnapshotWatch {
    /// The epoch of the most recently published snapshot (0 before the
    /// first publication).
    pub fn epoch(&self) -> u64 {
        self.shared.slot.lock().unwrap().epoch
    }

    /// Whether the publisher is gone (no newer snapshot will arrive).
    pub fn is_closed(&self) -> bool {
        self.shared.slot.lock().unwrap().closed
    }

    /// The latest published snapshot, without blocking. Idle polling costs
    /// a mutex lock and an `Arc` clone — never a matrix rebuild.
    pub fn latest(&self) -> Option<VersionedSnapshot> {
        let slot = self.shared.slot.lock().unwrap();
        slot.snapshot
            .as_ref()
            .map(|s| VersionedSnapshot { epoch: slot.epoch, snapshot: Arc::clone(s) })
    }

    /// Block until a snapshot with an epoch strictly newer than `epoch` is
    /// published, and return it.
    ///
    /// A consumer that starts at `epoch = 0` and feeds each returned epoch
    /// back in observes every epoch it can keep up with exactly once; a
    /// consumer that falls behind skips straight to the newest. Returns
    /// [`WatchClosed`] once the publisher is gone and nothing newer than
    /// `epoch` was ever published.
    pub fn wait_newer(&self, epoch: u64) -> Result<VersionedSnapshot, WatchClosed> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if slot.epoch > epoch {
                if let Some(s) = &slot.snapshot {
                    return Ok(VersionedSnapshot { epoch: slot.epoch, snapshot: Arc::clone(s) });
                }
            }
            if slot.closed {
                return Err(WatchClosed);
            }
            slot = self.shared.newer.wait(slot).unwrap();
        }
    }
}

impl SnapshotPublisher {
    /// Publish `snapshot` at `epoch`, waking every waiting consumer.
    /// Epochs must be monotonically non-decreasing; a republication at the
    /// current epoch replaces the snapshot without waking `wait_newer`
    /// callers already past it.
    pub fn publish(&self, epoch: u64, snapshot: Arc<GramSnapshot>) {
        let mut slot = self.shared.slot.lock().unwrap();
        debug_assert!(epoch >= slot.epoch, "epochs must not go backwards");
        slot.epoch = epoch;
        slot.snapshot = Some(snapshot);
        drop(slot);
        self.shared.newer.notify_all();
    }

    /// Close the watch: every current and future waiter observes
    /// [`WatchClosed`] (after consuming any snapshot still newer than its
    /// request). Called automatically on drop.
    pub fn close(&self) {
        let mut slot = self.shared.slot.lock().unwrap();
        slot.closed = true;
        drop(slot);
        self.shared.newer.notify_all();
    }
}

impl Drop for SnapshotPublisher {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(n: usize) -> Arc<GramSnapshot> {
        Arc::new(GramSnapshot { matrix: vec![1.0; n * n], num_graphs: n })
    }

    #[test]
    fn latest_is_none_until_first_publish() {
        let (publisher, watch) = snapshot_channel();
        assert!(watch.latest().is_none());
        assert_eq!(watch.epoch(), 0);
        publisher.publish(1, snap(2));
        let v = watch.latest().unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.snapshot.num_graphs, 2);
    }

    #[test]
    fn wait_newer_returns_an_already_newer_snapshot_immediately() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(3, snap(1));
        let v = watch.wait_newer(0).unwrap();
        assert_eq!(v.epoch, 3);
    }

    #[test]
    fn wait_newer_blocks_until_publication() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, snap(1));
        let waiter = std::thread::spawn(move || watch.wait_newer(1).map(|v| v.epoch));
        // give the waiter a chance to block, then publish
        std::thread::sleep(std::time::Duration::from_millis(20));
        publisher.publish(2, snap(2));
        assert_eq!(waiter.join().unwrap(), Ok(2));
    }

    #[test]
    fn close_wakes_blocked_waiters() {
        let (publisher, watch) = snapshot_channel();
        let waiter = std::thread::spawn(move || watch.wait_newer(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(publisher);
        assert_eq!(waiter.join().unwrap().unwrap_err(), WatchClosed);
    }

    #[test]
    fn a_newer_snapshot_is_still_served_after_close() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(5, snap(3));
        drop(publisher);
        assert!(watch.is_closed());
        // the final snapshot is newer than the consumer's epoch: drain it …
        assert_eq!(watch.wait_newer(2).unwrap().epoch, 5);
        // … and only then report closure
        assert_eq!(watch.wait_newer(5).unwrap_err(), WatchClosed);
    }

    #[test]
    fn consumers_that_fall_behind_skip_to_the_newest_epoch() {
        let (publisher, watch) = snapshot_channel();
        publisher.publish(1, snap(1));
        publisher.publish(2, snap(2));
        publisher.publish(3, snap(3));
        let v = watch.wait_newer(1).unwrap();
        assert_eq!(v.epoch, 3, "watch semantics: only the newest snapshot is retained");
        assert_eq!(v.snapshot.num_graphs, 3);
    }
}
