//! The sharded serving plane: K [`GramScheduler`]s behind a content-hash
//! router.
//!
//! One scheduler thread serializes every flush and request drain behind a
//! single command channel. A [`GramCluster`] multiplies that plane: it
//! spawns `K` independent shards (each its own `GramScheduler` owning its
//! own [`GramService`]) and routes work to them by **content hash** —
//! structures by their own [`PairSide`] identity, request pairs by their
//! order-normalized [`PairKey`]. Routing is a pure function of content, so
//! it is deterministic across restarts, and both orientations of a pair
//! land on the *same* shard — per-shard request coalescing and the
//! symmetric-cache-answer guarantee survive sharding unchanged (duplicates
//! of one pair can never split across shards).
//!
//! The cluster fronts are thin and cloneable:
//!
//! * [`ClusterClient`] routes `submit` / `submit_all` / `flush`; a cluster
//!   [`flush`](ClusterClient::flush) barriers *every* shard and reports the
//!   merged [`ClusterBarrierReply`].
//! * [`ClusterKernelClient`] routes typed requests (including the
//!   [`Precision::Refined`] lane via
//!   [`GramCluster::kernel_client_refined`]) to the pair's owning shard.
//! * [`ClusterWatch`] merges the per-shard [`SnapshotWatch`]es into one
//!   **cluster epoch** — the sum of the shard epochs. A
//!   [`ClusterSnapshot`] is consistent iff every shard's epoch was
//!   observed in one capture pass, which [`ClusterWatch::latest`]
//!   guarantees; per-shard epochs are monotone, so the summed cluster
//!   epoch is too.
//! * [`ClusterTelemetry`] aggregates the per-shard registries into one
//!   scrape surface, stamping `shard="k"` onto every metric.
//! * [`GramCluster::join`] drains **all** shards (a panicked shard never
//!   prevents the others from finishing their outstanding work) and then
//!   re-raises the first shard panic, mirroring
//!   [`GramScheduler::join`]'s propagation contract.
//!
//! `K = 1` is the degenerate case: one shard, every route resolves to it,
//! and the cluster behaves exactly like the underlying scheduler.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use mgk_core::KernelResult;
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_telemetry::{MetricsRegistry, TelemetrySnapshot};

use crate::cache::{PairKey, PairSide};
use crate::hash::{ContentHash, Fnv1a};
use crate::scheduler::{
    GramClient, GramScheduler, KernelClient, RequestScalar, SchedulerConfig, SchedulerError,
};
use crate::service::GramService;
use crate::ticket::Ticket;
use crate::watch::{SnapshotWatch, VersionedSnapshot, WatchClosed};

#[allow(unused_imports)] // rustdoc links
use mgk_linalg::Precision;

/// Configuration of a [`GramCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of shards (scheduler threads). `0` is treated as `1`; with
    /// one shard the cluster degenerates to a plain [`GramScheduler`].
    pub shards: usize,
    /// Per-shard scheduler configuration (each shard gets its own command
    /// channel of this capacity).
    pub scheduler: SchedulerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { shards: 1, scheduler: SchedulerConfig::default() }
    }
}

/// The shard owning one structure, by its content-identity
/// [`PairSide`] — a pure function of `(hash, vertices, edges)` and the
/// shard count, so the assignment is stable across restarts.
pub fn shard_of_side(side: &PairSide, shards: usize) -> usize {
    debug_assert!(shards > 0, "a cluster has at least one shard");
    let mut h = Fnv1a::new();
    h.write_u64(side.hash);
    h.write_u32(side.vertices);
    h.write_u32(side.edges);
    (h.finish() % shards.max(1) as u64) as usize
}

/// The shard owning one request pair, by its order-normalized
/// [`PairKey`]. Normalization means `(A, B)` and `(B, A)` route
/// identically, so both orientations coalesce/cache-share on one shard —
/// duplicates of a pair can never solve twice on different shards.
pub fn shard_of_key(key: &PairKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "a cluster has at least one shard");
    let mut h = Fnv1a::new();
    h.write_u64(key.lo.hash);
    h.write_u32(key.lo.vertices);
    h.write_u32(key.lo.edges);
    h.write_u64(key.hi.hash);
    h.write_u32(key.hi.vertices);
    h.write_u32(key.hi.edges);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Reply of a [`ClusterClient::flush`] barrier: every shard flushed, all
/// replies merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterBarrierReply {
    /// The cluster epoch after the barrier — the sum of the shard epochs.
    pub epoch: u64,
    /// Each shard's own epoch at its barrier, by shard index.
    pub shard_epochs: Vec<u64>,
    /// Structures admitted cluster-wide.
    pub num_structures: usize,
}

/// K schedulers behind a content-hash router. See the module docs.
#[derive(Debug)]
pub struct GramCluster<KV, KE, V, E> {
    shards: Vec<GramScheduler<KV, KE, V, E>>,
    hasher: fn(&Graph<V, E>) -> u64,
}

impl<KV, KE, V, E> GramCluster<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash + 'static,
    E: Copy + Default + Send + Sync + ContentHash + 'static,
    KV: BaseKernel<V> + Clone + Send + Sync + 'static,
    KE: BaseKernel<E> + Clone + Send + Sync + 'static,
{
    /// Spawn `config.shards` scheduler shards, each owning a clone of
    /// `prototype` (cloning forks the telemetry hub, so every shard gets
    /// its own registry; a pre-warmed prototype warms every shard). The
    /// prototype's content hasher doubles as the cluster's routing hash,
    /// so routing always agrees with the shards' own identity computation.
    pub fn spawn(prototype: GramService<KV, KE, V, E>, config: ClusterConfig) -> Self {
        let k = config.shards.max(1);
        let hasher = prototype.content_hasher();
        let mut shards = Vec::with_capacity(k);
        for _ in 0..k - 1 {
            shards.push(GramScheduler::spawn(prototype.clone(), config.scheduler));
        }
        shards.push(GramScheduler::spawn(prototype, config.scheduler));
        GramCluster { shards, hasher }
    }

    /// [`spawn`](Self::spawn) with durability: each shard gets its own
    /// [`PairStore`](mgk_store::PairStore) under
    /// `durability.for_shard(k)` and recovers from it before serving.
    /// Content-hash routing is restart-stable, so after a restart every
    /// shard finds exactly the pairs it owned in its previous life.
    /// Cloning a service always detaches any store (a live WAL handle must
    /// never be shared), so attaching per shard after the clone is safe.
    /// Returns the cluster plus one [`RecoveryReport`] per shard, by shard
    /// index.
    pub fn spawn_durable(
        prototype: GramService<KV, KE, V, E>,
        config: ClusterConfig,
        durability: crate::persist::DurabilityConfig,
    ) -> Result<(Self, Vec<crate::persist::RecoveryReport>), mgk_store::StoreError> {
        let k = config.shards.max(1);
        let hasher = prototype.content_hasher();
        let mut shards = Vec::with_capacity(k);
        let mut reports = Vec::with_capacity(k);
        for shard in 0..k {
            let mut service = prototype.clone();
            let report = service.attach_store(durability.for_shard(shard))?;
            reports.push(report);
            shards.push(GramScheduler::spawn(service, config.scheduler));
        }
        Ok((GramCluster { shards, hasher }, reports))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A routing producer/consumer handle (cheap; clone freely across
    /// threads).
    pub fn client(&self) -> ClusterClient<V, E> {
        ClusterClient {
            clients: self.shards.iter().map(|s| s.client()).collect(),
            hasher: self.hasher,
        }
    }

    /// A routing typed request client at the [`Scalar`](mgk_linalg::Scalar)
    /// instantiation `T`, mirroring [`GramScheduler::kernel_client`].
    pub fn kernel_client<T: RequestScalar>(&self) -> ClusterKernelClient<V, E, T> {
        ClusterKernelClient {
            clients: self.shards.iter().map(|s| s.kernel_client::<T>()).collect(),
            hasher: self.hasher,
        }
    }

    /// A routing request client on the mixed-precision refinement path,
    /// mirroring [`GramScheduler::kernel_client_refined`]: tickets resolve
    /// to f64-quality [`KernelResult<f64>`]s computed by f32 PCG sweeps
    /// with f64 residual corrections, on the pair's owning shard.
    pub fn kernel_client_refined(&self) -> ClusterKernelClient<V, E, f64> {
        ClusterKernelClient {
            clients: self.shards.iter().map(|s| s.kernel_client_refined()).collect(),
            hasher: self.hasher,
        }
    }

    /// The merged cluster watch over every shard's snapshot watch.
    pub fn watch(&self) -> ClusterWatch {
        ClusterWatch { watches: self.shards.iter().map(|s| s.watch()).collect() }
    }

    /// The aggregated scrape surface over every shard's registry.
    pub fn telemetry(&self) -> ClusterTelemetry {
        ClusterTelemetry { registries: self.shards.iter().map(|s| s.telemetry()).collect() }
    }

    /// Gracefully shut down every shard: each drains its outstanding
    /// submissions and requests, then the services are returned by shard
    /// index. Every shard is joined before any panic is re-raised — a
    /// poisoned shard never strands its siblings' outstanding work — and
    /// the **first** shard panic (by shard index) is then re-raised,
    /// matching [`GramScheduler::join`].
    pub fn join(self) -> Vec<GramService<KV, KE, V, E>> {
        let mut services = Vec::with_capacity(self.shards.len());
        let mut first_panic = None;
        for shard in self.shards {
            match catch_unwind(AssertUnwindSafe(move || shard.join())) {
                Ok(service) => services.push(service),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        services
    }
}

/// Cheap, cloneable producer handle routing submissions to their owning
/// shard by content hash.
#[derive(Debug)]
pub struct ClusterClient<V, E> {
    clients: Vec<GramClient<V, E>>,
    hasher: fn(&Graph<V, E>) -> u64,
}

impl<V, E> Clone for ClusterClient<V, E> {
    fn clone(&self) -> Self {
        ClusterClient { clients: self.clients.clone(), hasher: self.hasher }
    }
}

impl<V, E> ClusterClient<V, E> {
    fn side(&self, g: &Graph<V, E>) -> PairSide {
        PairSide::new((self.hasher)(g), g.num_vertices() as u32, g.num_edges() as u32)
    }

    /// The shard index a structure routes to.
    pub fn shard_of(&self, structure: &Graph<V, E>) -> usize {
        shard_of_side(&self.side(structure), self.clients.len())
    }

    /// Enqueue a structure on its owning shard, blocking while that
    /// shard's command channel is full.
    pub fn submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.clients[self.shard_of(&structure)].submit(structure)
    }

    /// [`submit`](Self::submit) without blocking; a full owning-shard
    /// channel reports [`SchedulerError::Backpressure`].
    pub fn try_submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.clients[self.shard_of(&structure)].try_submit(structure)
    }

    /// Enqueue a collection, routed per structure and batched per shard
    /// (one command per shard that receives anything). Returns the number
    /// of structures enqueued; empty structures are skipped.
    pub fn submit_all(
        &self,
        structures: impl IntoIterator<Item = Graph<V, E>>,
    ) -> Result<usize, SchedulerError> {
        let mut per_shard: Vec<Vec<Graph<V, E>>> =
            (0..self.clients.len()).map(|_| Vec::new()).collect();
        for g in structures {
            if g.num_vertices() == 0 {
                continue;
            }
            per_shard[self.shard_of(&g)].push(g);
        }
        let mut enqueued = 0;
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                enqueued += self.clients[shard].submit_all(batch)?;
            }
        }
        Ok(enqueued)
    }

    /// Cluster barrier: block until every submission enqueued before this
    /// call — on any shard — has been admitted and solved. Shards are
    /// barriered in index order; each shard only ever receives its own
    /// routed submissions, so the sequential sweep observes a consistent
    /// "everything enqueued before the call" state.
    pub fn flush(&self) -> Result<ClusterBarrierReply, SchedulerError> {
        let mut shard_epochs = Vec::with_capacity(self.clients.len());
        let mut num_structures = 0;
        for client in &self.clients {
            let reply = client.flush()?;
            shard_epochs.push(reply.epoch);
            num_structures += reply.num_structures;
        }
        Ok(ClusterBarrierReply { epoch: shard_epochs.iter().sum(), shard_epochs, num_structures })
    }

    /// The merged cluster watch over every shard this client routes to.
    pub fn watch(&self) -> ClusterWatch {
        ClusterWatch { watches: self.clients.iter().map(|c| c.watch()).collect() }
    }
}

/// Cheap, cloneable typed request handle routing each pair to its owning
/// shard by normalized content key.
#[derive(Debug)]
pub struct ClusterKernelClient<V, E, T: RequestScalar = f32> {
    clients: Vec<KernelClient<V, E, T>>,
    hasher: fn(&Graph<V, E>) -> u64,
}

impl<V, E, T: RequestScalar> Clone for ClusterKernelClient<V, E, T> {
    fn clone(&self) -> Self {
        ClusterKernelClient { clients: self.clients.clone(), hasher: self.hasher }
    }
}

impl<V, E, T: RequestScalar> ClusterKernelClient<V, E, T> {
    fn side(&self, g: &Graph<V, E>) -> PairSide {
        PairSide::new((self.hasher)(g), g.num_vertices() as u32, g.num_edges() as u32)
    }

    /// The shard index a pair routes to — by normalized [`PairKey`], so
    /// both orientations of a pair agree.
    pub fn shard_of(&self, left: &Graph<V, E>, right: &Graph<V, E>) -> usize {
        let key = PairKey::new(self.side(left), self.side(right));
        shard_of_key(&key, self.clients.len())
    }

    /// Request one pair's kernel value from its owning shard, blocking
    /// while that shard's command channel is full.
    pub fn request(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        if left.num_vertices() == 0 || right.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.clients[self.shard_of(&left, &right)].request(left, right)
    }

    /// [`request`](Self::request) with a deadline, mirroring
    /// [`KernelClient::request_within`].
    pub fn request_within(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
        budget: Duration,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        if left.num_vertices() == 0 || right.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.clients[self.shard_of(&left, &right)].request_within(left, right, budget)
    }

    /// [`request`](Self::request) without blocking; a full owning-shard
    /// channel reports [`SchedulerError::Backpressure`].
    pub fn try_request(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        if left.num_vertices() == 0 || right.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.clients[self.shard_of(&left, &right)].try_request(left, right)
    }

    /// Request a whole batch of pairs in submission order, each routed to
    /// its owning shard. Duplicate pairs coalesce there as usual.
    pub fn request_all(
        &self,
        pairs: impl IntoIterator<Item = (Graph<V, E>, Graph<V, E>)>,
    ) -> Result<Vec<Ticket<KernelResult<T>>>, SchedulerError> {
        pairs.into_iter().map(|(l, r)| self.request(l, r)).collect()
    }
}

/// A consistent observation of the whole cluster: every shard's epoch
/// captured in one pass, the cluster epoch their sum.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// The cluster epoch of this observation — the sum of `shard_epochs`.
    /// Per-shard epochs are monotone, so cluster epochs are too.
    pub epoch: u64,
    /// Each shard's epoch at capture, by shard index.
    pub shard_epochs: Vec<u64>,
    /// Each shard's latest snapshot, by shard index; `None` for a shard
    /// that has not published yet (or whose unobserved epoch was retired
    /// while its successor flush runs).
    pub shards: Vec<Option<VersionedSnapshot>>,
}

/// Merged consumer handle over every shard's [`SnapshotWatch`]. Cheap to
/// clone; any number of consumers may poll or wait concurrently.
#[derive(Debug, Clone)]
pub struct ClusterWatch {
    watches: Vec<SnapshotWatch>,
}

impl ClusterWatch {
    /// How long one shard's condvar is waited on before the round-robin
    /// sweep moves to the next shard. Progress on any single shard is
    /// observed within one slice of its publication.
    const WAIT_SLICE: Duration = Duration::from_millis(5);

    /// The current cluster epoch: the sum of every shard's epoch.
    pub fn epoch(&self) -> u64 {
        self.watches.iter().map(|w| w.epoch()).sum()
    }

    /// Each shard's current epoch, by shard index.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.watches.iter().map(|w| w.epoch()).collect()
    }

    /// Whether *every* shard's publisher is gone (no newer cluster
    /// snapshot will ever arrive).
    pub fn is_closed(&self) -> bool {
        self.watches.iter().all(|w| w.is_closed())
    }

    /// A consistent cluster observation: one capture pass reading every
    /// shard's epoch (and materializing its latest snapshot, if any).
    pub fn latest(&self) -> ClusterSnapshot {
        let mut shard_epochs = Vec::with_capacity(self.watches.len());
        let mut shards = Vec::with_capacity(self.watches.len());
        for watch in &self.watches {
            let versioned = watch.latest();
            // a shard mid-retirement reports its slot epoch with no
            // snapshot; the epoch still counts as observed progress
            shard_epochs.push(versioned.as_ref().map(|v| v.epoch).unwrap_or_else(|| watch.epoch()));
            shards.push(versioned);
        }
        ClusterSnapshot { epoch: shard_epochs.iter().sum(), shard_epochs, shards }
    }

    /// Block until the cluster epoch is strictly newer than `epoch`, and
    /// return the consistent observation that crossed it. Any single
    /// shard's flush bumps the cluster epoch (per-shard epochs are
    /// monotone and summed). Returns [`WatchClosed`] once every shard's
    /// publisher is gone and nothing newer than `epoch` remains.
    pub fn wait_newer(&self, epoch: u64) -> Result<ClusterSnapshot, WatchClosed> {
        let mut round = 0usize;
        loop {
            let observed = self.latest();
            if observed.epoch > epoch {
                return Ok(observed);
            }
            if self.is_closed() {
                // the closing shard may have published its final epoch
                // between the capture above and the closure check
                let last = self.latest();
                if last.epoch > epoch {
                    return Ok(last);
                }
                return Err(WatchClosed);
            }
            // wait one slice on one shard, rotating so a publication on
            // any shard is picked up within K slices; a single closed
            // shard is no error — only all-closed (above) ends the wait
            let watch = &self.watches[round % self.watches.len()];
            let _ = watch.wait_newer_timeout(watch.epoch(), Self::WAIT_SLICE);
            round += 1;
        }
    }
}

/// The cluster's aggregated scrape surface: every shard's registry,
/// merged with a `shard="k"` label stamped onto each metric.
#[derive(Debug, Clone)]
pub struct ClusterTelemetry {
    registries: Vec<Arc<MetricsRegistry>>,
}

impl ClusterTelemetry {
    /// The per-shard registries, by shard index (each shard's service
    /// forked its own on spawn).
    pub fn shard_registries(&self) -> &[Arc<MetricsRegistry>] {
        &self.registries
    }

    /// One consistent-format capture of the whole cluster: each shard's
    /// snapshot stamped `shard="k"`, merged and re-sorted. Render with
    /// `render_prometheus()` / `render_json()` as usual;
    /// `counter_total(name)` sums a counter across shards.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::merge(
            self.registries
                .iter()
                .enumerate()
                .map(|(shard, registry)| {
                    registry.snapshot().with_label("shard", &shard.to_string())
                })
                .collect::<Vec<_>>(),
        )
    }
}
