//! The streaming Gram service: submit structures incrementally, read back a
//! growing Gram matrix.
//!
//! The batch [`GramEngine`](mgk_core::GramEngine) recomputes all
//! `N (N + 1) / 2` pairs from scratch on every call. For a long-lived
//! serving workload — new structures trickle in, the kernel matrix feeds a
//! downstream model after every extension — that is quadratic waste: all
//! previously computed entries are still valid. [`GramService`] keeps them:
//!
//! * **Incremental extension.** Admitting `M` new structures to an
//!   `N`-structure service schedules only the `M` new row/column blocks
//!   (`(N + M)(N + M + 1)/2 − N (N + 1)/2` pairs); existing entries are
//!   never touched.
//! * **Entry caching.** Pairs are keyed by structure *content hash*
//!   ([`graph_content_hash`]), so resubmitting a structure the service has
//!   seen turns its pairs into lookups in an LRU-bounded [`PairCache`].
//! * **Warm-started solves.** Converged nodal solutions are retained per
//!   `(left structure, right dimension)` and donated as PCG starting
//!   guesses for later pairs of the same shape (`pcg_counted_warm` in
//!   `mgk-linalg`) — the reuse argument iterative-fitting convergence
//!   results justify. This pays off when appended structures closely
//!   resemble already-solved ones (streams of conformations or perturbed
//!   variants); for unrelated structures the donated residual buys little,
//!   so `pcg_counted_warm`'s residual guard bounds the cost of an
//!   unhelpful donor to one extra operator application.
//! * **Batched scheduling with backpressure.** Submissions queue up to
//!   [`GramServiceConfig::max_pending`]; past that, [`GramService::submit`]
//!   reports [`GramServiceError::Backpressure`] so producers can throttle.
//!   [`flush`](GramService::flush) drains the queue in batches of
//!   [`GramServiceConfig::batch_size`] jobs, each batch fanned out over the
//!   persistent worker pool.
//!
//! `flush` runs on the caller's thread; to decouple producers from solve
//! latency, hand the service to a
//! [`GramScheduler`](crate::scheduler::GramScheduler), which drains the
//! queue on a background thread and publishes versioned snapshots to a
//! [`SnapshotWatch`](crate::watch::SnapshotWatch).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rayon::prelude::*;

use mgk_core::{KernelResult, MarginalizedKernelSolver, SolverConfig, SolverError};
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_linalg::{Precision, Scalar};
use mgk_reorder::ReorderMethod;
use mgk_telemetry::{MetricsRegistry, Stopwatch};

use crate::cache::{CachedEntry, NodalCache, PairCache, PairKey, PairSide, Recency, ReorderCache};
use crate::hash::{graph_content_hash, ContentHash};
use crate::metrics::RuntimeMetrics;
use crate::persist::{
    entry_from_stored, entry_to_stored, side_to_stored, DurabilityConfig, RecoveryReport,
    ServiceStore, SyncScheduled,
};

/// Configuration of a [`GramService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GramServiceConfig {
    /// Normalize snapshots to unit self-similarity
    /// (`K̂_ij = K_ij / sqrt(K_ii K_jj)`). Raw entries are stored
    /// unnormalized so cached values stay valid as the matrix grows.
    pub normalize: bool,
    /// Maximum queued-but-unprocessed submissions before
    /// [`GramService::submit`] reports backpressure.
    pub max_pending: usize,
    /// Pair solves scheduled per parallel batch.
    pub batch_size: usize,
    /// Capacity of the pair-entry cache (entries, not bytes).
    pub cache_capacity: usize,
    /// Capacity of the reorder cache: prepared (reordered) structures
    /// retained per content identity so re-encountered structures skip the
    /// per-structure preprocessing entirely — on batch admission and on
    /// the request lane alike. 0 disables the cache; it is also bypassed
    /// when the configured preprocessing is the identity
    /// (natural ordering, no stopping-probability override), where there
    /// is nothing to reuse.
    pub reorder_cache_capacity: usize,
    /// Donate converged solutions as warm starts for equally-sized systems.
    pub warm_start: bool,
    /// Maximum retained warm-start donor *keys* (each holding up to
    /// [`donors_per_key`](Self::donors_per_key) `n × m`-float vectors); at
    /// capacity the least-recently-donated key is evicted — the pool is a
    /// best-effort hint store, not a correctness structure.
    pub donor_capacity: usize,
    /// Donor vectors retained per key. Every candidate's initial residual
    /// is measured at solve time and the best one seeds the iteration
    /// (`pcg_counted_warm_multi`), so keeping a few donors per key widens
    /// the regime where warm starts pay off beyond the last-donated
    /// structure.
    pub donors_per_key: usize,
    /// Capacity of the nodal side-cache: converged per-vertex-pair solution
    /// vectors retained per *ordered* pair identity, so an `f32` cache
    /// answer can carry its nodal vector instead of forcing a re-solve on
    /// callers that need it. 0 disables the side-cache (cache answers then
    /// carry values only, as before).
    pub nodal_cache_capacity: usize,
}

impl Default for GramServiceConfig {
    fn default() -> Self {
        GramServiceConfig {
            normalize: true,
            max_pending: 1024,
            batch_size: 256,
            cache_capacity: 4096,
            reorder_cache_capacity: 512,
            warm_start: true,
            donor_capacity: 256,
            donors_per_key: 3,
            nodal_cache_capacity: 128,
        }
    }
}

/// Index of an admitted structure; row/column of the structure in every
/// snapshot taken after its admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub usize);

/// Errors reported by [`GramService::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramServiceError {
    /// The pending queue is full; flush (or drop submissions) before
    /// retrying.
    Backpressure {
        /// Submissions currently queued.
        pending: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The submitted structure has no vertices.
    EmptyStructure,
}

impl std::fmt::Display for GramServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GramServiceError::Backpressure { pending, capacity } => {
                write!(f, "pending queue full ({pending}/{capacity}); flush before resubmitting")
            }
            GramServiceError::EmptyStructure => {
                write!(f, "cannot admit a structure with no vertices")
            }
        }
    }
}

impl std::error::Error for GramServiceError {}

/// Cumulative counters of one service instance.
///
/// Since the telemetry plane landed this is a *view*, not the store:
/// every field is read out of the service's [`RuntimeMetrics`] registry by
/// [`GramService::stats`], so scraping the registry and reading this
/// struct can never disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Structures admitted (pending ones not yet included).
    pub admitted: usize,
    /// Pair solves actually executed (cache hits excluded).
    pub jobs_executed: usize,
    /// Pair entries served from the cache instead of solved.
    pub cache_hits: usize,
    /// Executed solves that started from a donated warm-start guess.
    pub warm_started: usize,
    /// Total PCG iterations across executed solves.
    pub total_iterations: usize,
    /// Executed solves that failed to converge (entries left `NaN`).
    pub failures: usize,
    /// Parallel batches scheduled.
    pub batches: usize,
    /// Admitted structures whose content hash equals an earlier admitted
    /// structure's while vertex or edge counts differ — an observed 64-bit
    /// content-hash collision. The widened [`PairKey`] keeps such pairs
    /// from aliasing cache entries; this counter makes the event (and thus
    /// the residual risk of a collision with *equal* counts) monitorable.
    pub hash_collisions: usize,
    /// Copy-on-write clones of the `N(N+1)/2` triangle: a flush landed
    /// while a captured [`SnapshotSource`] still shared it. Capture itself
    /// is O(1) (an `Arc` clone), so this counts the only remaining O(n²)
    /// publication cost.
    pub triangle_copies: usize,
    /// Request-lane solves executed (per coalesced group, not per ticket).
    pub request_solves: usize,
    /// Requests answered straight from the [`PairCache`] without touching
    /// the solve lane.
    pub request_cache_answers: usize,
    /// Tickets that attached to an already-grouped in-flight request
    /// instead of scheduling their own solve (duplicates beyond each
    /// group's first).
    pub requests_coalesced: usize,
    /// Tickets resolved [`Expired`](crate::RequestError::Expired) because
    /// their deadline passed before the solve started — the sum of
    /// [`requests_expired_in_queue`](Self::requests_expired_in_queue) and
    /// [`requests_expired_pre_solve`](Self::requests_expired_pre_solve).
    pub requests_expired: usize,
    /// Tickets whose deadline had already passed when the scheduler
    /// drained them out of the command queue: the time died waiting in the
    /// channel, before any work was attempted.
    pub requests_expired_in_queue: usize,
    /// Tickets that were alive at drain but expired before their group's
    /// solve started, because earlier groups of the same drain were
    /// solving.
    pub requests_expired_pre_solve: usize,
    /// Tickets skipped because the consumer dropped them before the solve
    /// started.
    pub requests_cancelled: usize,
    /// Structures whose prepared (reordered) form was served from the
    /// reorder cache instead of recomputed — on batch admission or on the
    /// request lane.
    pub reorder_hits: usize,
    /// Structures whose preprocessing actually ran because no cached
    /// prepared form existed. Bypassed lookups (identity preprocessing,
    /// cache disabled) count in neither bucket.
    pub reorder_misses: usize,
    /// `f32` cache answers whose nodal vector was served from the nodal
    /// side-cache.
    pub nodal_hits: usize,
    /// `f32` cache answers that wanted a nodal vector but found none
    /// retained (evicted, mirrored orientation, or never solved on this
    /// instance).
    pub nodal_misses: usize,
    /// Records appended to the attached store's write-ahead log.
    pub store_appends: usize,
    /// Bytes appended to the attached store's write-ahead log.
    pub store_bytes: usize,
    /// `fsync` calls the attached store issued.
    pub store_fsyncs: usize,
    /// Entries replayed into the pair cache when a store was attached.
    pub store_replayed: usize,
    /// Torn final WAL records skipped (and truncated) at recovery.
    pub store_torn_tail: usize,
}

/// A materialized (dense, symmetric) view of the service's Gram matrix.
#[derive(Debug, Clone)]
pub struct GramSnapshot {
    /// Row-major `N × N` kernel matrix; entries of failed pairs are `NaN`.
    pub matrix: Vec<f32>,
    /// Number of admitted structures.
    pub num_graphs: usize,
}

impl GramSnapshot {
    /// Access entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.matrix[i * self.num_graphs + j]
    }
}

/// The raw ingredients of a [`GramSnapshot`]: the service's lower-triangle
/// values plus the normalization policy, captured *without* materializing
/// the dense matrix.
///
/// Capturing a source is O(1): the `N (N + 1) / 2` triangle is `Arc`-shared
/// with the service (copy-on-write — the service clones it only if a flush
/// mutates the triangle while a captured source still holds it, counted in
/// [`ServiceStats::triangle_copies`]); [`build`](Self::build) performs the
/// O(n²) materialization. The background scheduler publishes sources and
/// lets the snapshot watch build on first demand, so flushes that nobody
/// observes pay neither a copy nor a dense build.
#[derive(Debug, Clone)]
pub struct SnapshotSource {
    /// Lower-triangular raw kernel values, entry `(i, j)` with `j <= i` at
    /// `i (i + 1) / 2 + j`; shared copy-on-write with the service.
    triangle: Arc<Vec<f32>>,
    /// Number of admitted structures.
    num_graphs: usize,
    /// Normalize to unit self-similarity on build.
    normalize: bool,
}

impl SnapshotSource {
    /// A source materializing an already-built matrix (test/bench helper
    /// for feeding a watch without a service).
    pub fn from_triangle(triangle: Vec<f32>, num_graphs: usize, normalize: bool) -> Self {
        assert_eq!(
            triangle.len(),
            num_graphs * (num_graphs + 1) / 2,
            "triangle length must match num_graphs"
        );
        SnapshotSource { triangle: Arc::new(triangle), num_graphs, normalize }
    }

    /// Number of admitted structures of the snapshot this source builds.
    pub fn num_graphs(&self) -> usize {
        self.num_graphs
    }

    /// Materialize the dense symmetric (optionally normalized) snapshot —
    /// the O(n²) step that lazy publication defers.
    pub fn build(&self) -> GramSnapshot {
        let n = self.num_graphs;
        let mut matrix = vec![f32::NAN; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.triangle[tri_index(i, j)];
                matrix[i * n + j] = v;
                matrix[j * n + i] = v;
            }
        }
        if self.normalize {
            let diag: Vec<f32> = (0..n).map(|i| matrix[i * n + i]).collect();
            for i in 0..n {
                for j in 0..n {
                    let d = (diag[i] * diag[j]).sqrt();
                    // a failed or degenerate diagonal poisons its whole
                    // row/column: mark those entries NaN rather than
                    // leaking raw-scale values into a normalized matrix
                    if d > 0.0 {
                        matrix[i * n + j] /= d;
                    } else {
                        matrix[i * n + j] = f32::NAN;
                    }
                }
            }
        }
        GramSnapshot { matrix, num_graphs: n }
    }
}

/// One admitted structure: the prepared graph plus its content identity.
/// The graph is `Arc`-shared with the reorder cache, so admitting a
/// structure whose prepared form is already cached copies a pointer, not a
/// graph.
#[derive(Debug, Clone)]
struct Member<V, E> {
    graph: Arc<Graph<V, E>>,
    hash: u64,
    vertices: usize,
    edges: usize,
}

impl<V, E> Member<V, E> {
    /// The member's collision-hardened cache-key side.
    fn side(&self) -> PairSide {
        PairSide::new(self.hash, self.vertices as u32, self.edges as u32)
    }
}

/// One retained warm-start donor: the converged nodal solution, the
/// content hash of the right structure it was solved against (the donor's
/// identity within its key bucket) and the iteration count of the solve
/// that produced it (fewer iterations ⇒ the solve started closer to the
/// fixed point ⇒ the better donor).
#[derive(Debug, Clone)]
struct DonorEntry {
    right_hash: u64,
    nodal: Vec<f32>,
    iterations: usize,
}

/// Warm-start donors keyed by `(left structure hash, right vertex count)`,
/// bounded by evicting the least-recently-donated key.
///
/// Each key retains up to `per_key` donors from *distinct* right
/// structures (the `k` nearest donors of the ROADMAP's similarity-search
/// item — "nearest" is decided at solve time, where
/// `pcg_counted_warm_multi` measures every candidate's initial residual
/// and starts from the best, so a donor that merely *looks* close never
/// beats one that actually is). Donation policy within a bucket: a donor
/// for the same right structure keeps the existing vector when the
/// incoming solve took *more* iterations — it converged from a worse
/// starting point, so the retained donor was closer to the fixed point; a
/// donor for a new right structure displaces the bucket's oldest once the
/// bucket is full. Either way the key's recency is refreshed (it is
/// actively being donated to).
#[derive(Debug, Clone)]
struct DonorPool {
    capacity: usize,
    per_key: usize,
    map: HashMap<(u64, usize), (u64, Vec<DonorEntry>)>,
    recency: Recency<(u64, usize)>,
}

impl DonorPool {
    fn new(capacity: usize, per_key: usize) -> Self {
        DonorPool {
            capacity: capacity.max(1),
            per_key: per_key.max(1),
            map: HashMap::new(),
            recency: Recency::new(),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Every retained candidate for `key`, newest donation first
    /// (read-only: batch workers share the pool immutably, so recency is
    /// donation-time only).
    fn candidates(&self, key: &(u64, usize)) -> impl Iterator<Item = &[f32]> {
        self.map
            .get(key)
            .into_iter()
            .flat_map(|(_, bucket)| bucket.iter().rev().map(|e| e.nodal.as_slice()))
    }

    fn donate(&mut self, key: (u64, usize), right_hash: u64, nodal: Vec<f32>, iterations: usize) {
        if let Some((stamp, bucket)) = self.map.get_mut(&key) {
            match bucket.iter_mut().find(|e| e.right_hash == right_hash) {
                Some(existing) => {
                    if iterations <= existing.iterations {
                        existing.nodal = nodal;
                        existing.iterations = iterations;
                    }
                }
                None => {
                    if bucket.len() >= self.per_key {
                        // the bucket's oldest donor is the least likely to
                        // still resemble the stream
                        bucket.remove(0);
                    }
                    bucket.push(DonorEntry { right_hash, nodal, iterations });
                }
            }
            *stamp = self.recency.touch(key);
        } else {
            if self.map.len() >= self.capacity {
                let map = &self.map;
                if let Some(victim) = self.recency.pop_lru(|k| map.get(k).map(|(t, _)| *t)) {
                    self.map.remove(&victim);
                }
            }
            let stamp = self.recency.touch(key);
            self.map.insert(key, (stamp, vec![DonorEntry { right_hash, nodal, iterations }]));
        }
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
    }
}

/// The streaming Gram service. See the module docs for the design.
///
/// Cloning a service (all label and kernel types are `Clone`) snapshots its
/// full state — members, triangle, cache and donors — which benchmarks use
/// to replay an extension from the same warm starting point. The telemetry
/// hub forks on clone (fresh cells seeded at current values), so a replayed
/// clone never double-counts into the original's registry.
#[derive(Debug)]
pub struct GramService<KV, KE, V, E> {
    /// Applies the user's preprocessing (reordering, stopping-probability
    /// override) once per admitted structure, mirroring the Gram engine's
    /// reorder-once amortization.
    prep_solver: MarginalizedKernelSolver<KV, KE>,
    /// Solves prepared pairs; reordering disabled, nodal vectors retained
    /// for the warm-start donor pool.
    pair_solver: MarginalizedKernelSolver<KV, KE>,
    config: GramServiceConfig,
    members: Vec<Member<V, E>>,
    /// Lower-triangular raw kernel values: entry `(i, j)` with `j <= i`
    /// lives at `i (i + 1) / 2 + j`. Appending structures appends rows —
    /// existing entries never move. `Arc`-shared with captured
    /// [`SnapshotSource`]s (copy-on-write: a flush that lands while a
    /// source still holds the triangle clones it first, counted in
    /// [`ServiceStats::triangle_copies`]).
    values: Arc<Vec<f32>>,
    pending: VecDeque<Graph<V, E>>,
    cache: PairCache,
    /// Prepared (reordered) structures keyed by the *raw* structure's
    /// content identity, shared across batch admission and the request
    /// lane. The stored `Arc` makes reuse allocation-free, and — because
    /// reordering is precision-independent — one entry serves f32 and f64
    /// solves alike.
    reorder: ReorderCache<Arc<Graph<V, E>>>,
    /// Best converged nodal solution per `(left structure hash, right
    /// vertex count)`. Keying on the *left* structure means a donor shares
    /// the `A_i ⊗ ·` half of the Kronecker system with the pair it seeds,
    /// which keeps the guess close for ensembles of similar structures; the
    /// `pcg_counted_warm` residual guard discards it when it is not.
    donors: DonorPool,
    /// Content hasher for cache keys and donor keys; replaceable via
    /// [`with_content_hasher`](GramService::with_content_hasher).
    hasher: fn(&Graph<V, E>) -> u64,
    /// Discriminators `(vertices, edges)` of the first admitted structure
    /// per content hash, used to observe hash collisions.
    seen_hashes: HashMap<u64, (usize, usize)>,
    /// Monotone snapshot version: bumped by every flush that admits at
    /// least one structure.
    version: u64,
    /// Converged nodal vectors per *ordered* pair identity, so `f32` cache
    /// answers can carry their solution vector (bounded; see
    /// [`GramServiceConfig::nodal_cache_capacity`]).
    nodal: NodalCache,
    /// The attached durability plane, if any: WAL + snapshots under one
    /// store directory. `None` means a purely in-memory service (the
    /// default). Dropped (detached) on the first store I/O error — serving
    /// continues, durability stops.
    store: Option<ServiceStore>,
    /// The triangle recovered from the newest store snapshot, held until
    /// the scheduler publishes it as the initial epoch.
    recovered: Option<(u64, SnapshotSource)>,
    /// Telemetry hub: the one store behind [`ServiceStats`], the stage
    /// histograms and the live traffic gauges.
    metrics: RuntimeMetrics,
}

impl<KV, KE, V, E> Clone for GramService<KV, KE, V, E>
where
    KV: Clone,
    KE: Clone,
    V: Clone,
    E: Clone,
{
    fn clone(&self) -> Self {
        GramService {
            prep_solver: self.prep_solver.clone(),
            pair_solver: self.pair_solver.clone(),
            config: self.config,
            members: self.members.clone(),
            values: Arc::clone(&self.values),
            pending: self.pending.clone(),
            cache: self.cache.clone(),
            reorder: self.reorder.clone(),
            donors: self.donors.clone(),
            hasher: self.hasher,
            seen_hashes: self.seen_hashes.clone(),
            version: self.version,
            nodal: self.nodal.clone(),
            // a clone must never share (or duplicate) the original's live
            // WAL handle — two writers would interleave frames. The clone
            // starts detached; attach_store gives it its own directory.
            store: None,
            recovered: None,
            // fresh cells seeded at current values: the clone replays from
            // the same observable counts without writing into the
            // original's registry
            metrics: self.metrics.fork(),
        }
    }
}

impl<KV, KE, V, E> GramService<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    /// Create a service around a per-pair solver.
    ///
    /// The solver's reordering and stopping-probability settings are
    /// applied once per structure at admission (the reorder-once
    /// amortization of the batch engine); its solve options govern every
    /// pair solve. A `max_pending` of 0 is treated as 1 — a queue that can
    /// never accept anything would make every submission path a silent
    /// no-op.
    pub fn new(solver: MarginalizedKernelSolver<KV, KE>, mut config: GramServiceConfig) -> Self {
        config.max_pending = config.max_pending.max(1);
        let pair_config = SolverConfig {
            reorder: ReorderMethod::Natural,
            stopping_probability: None,
            compute_nodal: true,
            ..*solver.config()
        };
        let pair_solver = solver.with_config(pair_config);
        GramService {
            prep_solver: solver,
            pair_solver,
            cache: PairCache::new(config.cache_capacity),
            reorder: ReorderCache::new(config.reorder_cache_capacity),
            donors: DonorPool::new(config.donor_capacity, config.donors_per_key),
            nodal: NodalCache::new(config.nodal_cache_capacity),
            config,
            members: Vec::new(),
            values: Arc::new(Vec::new()),
            pending: VecDeque::new(),
            hasher: graph_content_hash,
            seen_hashes: HashMap::new(),
            version: 0,
            store: None,
            recovered: None,
            metrics: RuntimeMetrics::new(),
        }
    }

    /// Replace the content hasher used for cache and donor keys.
    ///
    /// The default is [`graph_content_hash`]; a replacement must be set
    /// before the first structure is admitted (keys of already-admitted
    /// structures are not rehashed). Primarily useful for callers that want
    /// a stronger hash — and for tests that force collisions to exercise
    /// the widened [`PairKey`] discriminators.
    pub fn with_content_hasher(mut self, hasher: fn(&Graph<V, E>) -> u64) -> Self {
        debug_assert!(self.members.is_empty(), "set the hasher before admitting structures");
        self.hasher = hasher;
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &GramServiceConfig {
        &self.config
    }

    /// Number of admitted structures (the dimension of the next snapshot).
    pub fn num_structures(&self) -> usize {
        self.members.len()
    }

    /// Number of submitted-but-unprocessed structures.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative service counters, assembled from the telemetry registry
    /// (the registry is the store; this struct is the thin view).
    pub fn stats(&self) -> ServiceStats {
        let m = &self.metrics;
        let expired_in_queue = m.requests_expired_in_queue.value() as usize;
        let expired_pre_solve = m.requests_expired_pre_solve.value() as usize;
        ServiceStats {
            admitted: m.admitted.value() as usize,
            jobs_executed: m.jobs_executed.value() as usize,
            cache_hits: m.cache_hits.value() as usize,
            warm_started: m.warm_started.value() as usize,
            total_iterations: m.total_iterations.value() as usize,
            failures: m.failures.value() as usize,
            batches: m.batches.value() as usize,
            hash_collisions: m.hash_collisions.value() as usize,
            triangle_copies: m.triangle_copies.value() as usize,
            request_solves: m.request_solves.value() as usize,
            request_cache_answers: m.request_cache_answers.value() as usize,
            requests_coalesced: m.requests_coalesced.value() as usize,
            requests_expired: expired_in_queue + expired_pre_solve,
            requests_expired_in_queue: expired_in_queue,
            requests_expired_pre_solve: expired_pre_solve,
            requests_cancelled: m.requests_cancelled.value() as usize,
            reorder_hits: m.reorder_hits.value() as usize,
            reorder_misses: m.reorder_misses.value() as usize,
            nodal_hits: m.nodal_hits.value() as usize,
            nodal_misses: m.nodal_misses.value() as usize,
            store_appends: m.store_appends.value() as usize,
            store_bytes: m.store_bytes.value() as usize,
            store_fsyncs: m.store_fsyncs.value() as usize,
            store_replayed: m.store_replayed.value() as usize,
            store_torn_tail: m.store_torn_tail.value() as usize,
        }
    }

    /// The service's telemetry hub: typed handles every pipeline stage
    /// records into. The scheduler shares this hub (handles are
    /// `Arc`-backed) and registers its own activity into the same cells.
    pub fn metrics(&self) -> &RuntimeMetrics {
        &self.metrics
    }

    /// The registry behind [`metrics`](Self::metrics) — the pull/scrape
    /// surface ([`MetricsRegistry::snapshot`] → Prometheus or JSON
    /// rendering).
    pub fn telemetry(&self) -> Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// Monotone snapshot version: bumped by every flush that admits at
    /// least one structure. The scheduler's watch epochs are exactly these
    /// versions.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cache hit/size observability for monitoring.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of retained warm-start donor vectors (bounded by
    /// [`GramServiceConfig::donor_capacity`]).
    pub fn donor_len(&self) -> usize {
        self.donors.len()
    }

    /// Number of retained prepared (reordered) structures (bounded by
    /// [`GramServiceConfig::reorder_cache_capacity`]).
    pub fn reorder_cache_len(&self) -> usize {
        self.reorder.len()
    }

    /// Queue a structure for admission.
    ///
    /// Returns the [`StructureId`] (snapshot row) it will occupy once
    /// flushed. Fails with [`GramServiceError::Backpressure`] when the
    /// pending queue is at [`GramServiceConfig::max_pending`] — the caller
    /// decides whether to flush, retry later or shed load.
    pub fn submit(&mut self, structure: Graph<V, E>) -> Result<StructureId, GramServiceError> {
        if structure.num_vertices() == 0 {
            return Err(GramServiceError::EmptyStructure);
        }
        if self.pending.len() >= self.config.max_pending {
            return Err(GramServiceError::Backpressure {
                pending: self.pending.len(),
                capacity: self.config.max_pending,
            });
        }
        let id = StructureId(self.members.len() + self.pending.len());
        self.pending.push_back(structure);
        Ok(id)
    }

    /// Submit every structure of an iterator, flushing whenever the queue
    /// fills (so backpressure throttles the producer instead of surfacing).
    /// Empty structures are skipped. Returns the ids assigned, in
    /// submission order.
    pub fn submit_all(
        &mut self,
        structures: impl IntoIterator<Item = Graph<V, E>>,
    ) -> Vec<StructureId> {
        let mut ids = Vec::new();
        for g in structures {
            if self.pending.len() >= self.config.max_pending {
                self.flush();
            }
            if let Ok(id) = self.submit(g) {
                ids.push(id);
            }
        }
        ids
    }

    /// Admit every pending structure and compute the new row/column blocks.
    ///
    /// Existing entries are not recomputed; new pairs are served from the
    /// content-hash cache where possible and otherwise scheduled in batches
    /// of [`GramServiceConfig::batch_size`] across the persistent worker
    /// pool. Returns the number of pair solves actually executed.
    pub fn flush(&mut self) -> usize {
        let first_new = self.members.len();
        if self.pending.is_empty() {
            return 0;
        }

        // admit: apply the per-structure preprocessing once, hash content.
        // The reorder cache (keyed by *raw* content identity) is prescanned
        // first, so only structures the service has never prepared pay the
        // reordering cost; the parallel preparation below runs over the
        // misses alone.
        let incoming: Vec<Graph<V, E>> = self.pending.drain(..).collect();
        let prepare_watch = Stopwatch::start();
        let cache_reorders = self.reorder_cache_active();
        let mut slots: Vec<Option<Arc<Graph<V, E>>>> = vec![None; incoming.len()];
        let mut missed: Vec<usize> = Vec::new();
        let keys: Vec<PairSide> = if cache_reorders {
            incoming.iter().map(|g| self.raw_side(g)).collect()
        } else {
            missed.extend(0..incoming.len());
            Vec::new()
        };
        for (idx, &key) in keys.iter().enumerate() {
            if let Some(prepared) = self.reorder.get(key) {
                self.metrics.reorder_hits.inc();
                slots[idx] = Some(Arc::clone(prepared));
            } else {
                self.metrics.reorder_misses.inc();
                missed.push(idx);
            }
        }
        let prep_solver = &self.prep_solver;
        let freshly: Vec<(usize, Arc<Graph<V, E>>)> = missed
            .par_iter()
            .map(|&idx| {
                let g = &incoming[idx];
                (idx, Arc::new(prep_solver.prepare(g).unwrap_or_else(|| g.clone())))
            })
            .collect();
        for (idx, prepared) in freshly {
            if cache_reorders {
                self.reorder.insert(keys[idx], Arc::clone(&prepared));
            }
            slots[idx] = Some(prepared);
        }
        // one preparation span per flush batch: prescan + parallel reorder
        self.metrics.stage_prepare.record(prepare_watch.elapsed_ns());
        for g in slots.into_iter().flatten() {
            let hash = (self.hasher)(&g);
            let vertices = g.num_vertices();
            let edges = g.num_edges();
            match self.seen_hashes.get(&hash) {
                Some(&(v, e)) if (v, e) != (vertices, edges) => {
                    // same 64-bit content hash, structurally different
                    // graph: the widened PairKey keeps the entries apart,
                    // but the event is worth counting
                    self.metrics.hash_collisions.inc();
                }
                Some(_) => {}
                None => {
                    self.seen_hashes.insert(hash, (vertices, edges));
                }
            }
            self.members.push(Member { graph: g, hash, vertices, edges });
        }
        self.metrics.admitted.add((self.members.len() - first_new) as u64);
        self.version += 1;

        // the new lower-triangle block: rows [first_new, len), all j <= i.
        // Content-identical pairs *within* this flush (duplicate
        // submissions landing in one batch) are deduplicated up front:
        // one representative is solved, the rest resolve from the cache
        // afterwards.
        let new_len = self.members.len();
        // copy-on-write: captured snapshot sources share the triangle; a
        // flush that lands while one is alive clones it once, up front
        if Arc::strong_count(&self.values) > 1 {
            self.metrics.triangle_copies.inc();
        }
        Arc::make_mut(&mut self.values).resize(new_len * (new_len + 1) / 2, f32::NAN);
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        let mut scheduled: std::collections::HashSet<PairKey> = std::collections::HashSet::new();
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        for i in first_new..new_len {
            for j in 0..=i {
                let key = PairKey::new(self.members[i].side(), self.members[j].side());
                if let Some(entry) = self.cache.get(key) {
                    Arc::make_mut(&mut self.values)[tri_index(i, j)] = entry.value;
                    self.metrics.cache_hits.inc();
                } else if scheduled.insert(key) {
                    jobs.push((i, j));
                } else {
                    deferred.push((i, j));
                }
            }
        }

        // schedule the misses in bounded batches over the worker pool
        let mut executed = 0;
        for batch in jobs.chunks(self.config.batch_size.max(1)) {
            executed += batch.len();
            self.run_batch(batch);
        }

        // duplicates of a just-solved representative are cache lookups now
        // (a representative that failed to converge leaves its duplicates
        // NaN too — consistent with the entry it mirrors)
        for (i, j) in deferred {
            let key = PairKey::new(self.members[i].side(), self.members[j].side());
            if let Some(entry) = self.cache.get(key) {
                Arc::make_mut(&mut self.values)[tri_index(i, j)] = entry.value;
                self.metrics.cache_hits.inc();
            }
        }

        // durability boundary of the admitting flush: epoch mark, fsync of
        // everything the batches appended, cadence snapshot when due
        self.persist_flush_boundary();
        executed
    }

    /// Solve one batch of `(i, j)` pairs in parallel and fold the results
    /// into the triangle, the cache and the donor pool.
    fn run_batch(&mut self, batch: &[(usize, usize)]) {
        self.metrics.batches.inc();
        // snapshot donors so every job in the batch sees a consistent pool
        let donors = &self.donors;
        let members = &self.members;
        let pair_solver = &self.pair_solver;
        let warm = self.config.warm_start;
        type JobOutcome = (usize, usize, bool, Result<KernelResult, SolverError>);
        // one solve span per batch (the paper's unit of scheduling), one
        // fold span for the sequential cache/donor/triangle writeback
        let solve_span = self.metrics.stage_solve.span();
        let results: Vec<JobOutcome> = batch
            .par_iter()
            .map(|&(i, j)| {
                let candidates: Vec<&[f32]> = if warm {
                    donors.candidates(&(members[i].hash, members[j].vertices)).collect()
                } else {
                    Vec::new()
                };
                let result = pair_solver.kernel_with_candidates(
                    &members[i].graph,
                    &members[j].graph,
                    &candidates,
                );
                (i, j, !candidates.is_empty(), result)
            })
            .collect();
        drop(solve_span);

        let _fold_span = self.metrics.stage_fold.span();
        let precision = self.pair_solver.config().precision;
        for (i, j, warmed, result) in results {
            self.metrics.jobs_executed.inc();
            let key = PairKey::new(self.members[i].side(), self.members[j].side());
            match result {
                Ok(r) => {
                    Arc::make_mut(&mut self.values)[tri_index(i, j)] = r.value;
                    self.metrics.total_iterations.add(r.iterations as u64);
                    if warmed {
                        self.metrics.warm_started.inc();
                    }
                    r.traffic.export_to(&self.metrics.traffic);
                    let entry = CachedEntry {
                        value: r.value,
                        value_f64: r.value_f64,
                        precision,
                        relative_residual: r.relative_residual,
                        iterations: r.iterations,
                    };
                    self.persist_pair(key, &entry);
                    self.cache.insert(key, entry);
                    if let Some(nodal) = r.nodal {
                        if self.config.nodal_cache_capacity > 0 {
                            self.nodal.insert(
                                (self.members[i].side(), self.members[j].side()),
                                Arc::new(nodal.clone()),
                            );
                        }
                        if self.config.warm_start {
                            let donor_key = (self.members[i].hash, self.members[j].vertices);
                            self.donors.donate(
                                donor_key,
                                self.members[j].hash,
                                nodal,
                                r.iterations,
                            );
                        }
                    }
                }
                Err(_) => {
                    // leave the entry NaN and do not cache: a retry after
                    // resubmission gets a fresh chance to converge
                    self.metrics.failures.inc();
                }
            }
        }
    }

    /// Materialize the current Gram matrix (flushing any pending
    /// submissions first).
    pub fn snapshot(&mut self) -> GramSnapshot {
        self.flush();
        self.snapshot_source().build()
    }

    /// Capture the ingredients of the current snapshot without building it
    /// — an O(1) `Arc` share of the triangle instead of the O(n²)
    /// materialization (the service clones the triangle lazily if a later
    /// flush mutates it while this source is still alive; see
    /// [`ServiceStats::triangle_copies`]). Pending submissions are *not*
    /// flushed; the scheduler captures a source right after its flush, and
    /// the watch materializes it on first demand.
    pub fn snapshot_source(&self) -> SnapshotSource {
        SnapshotSource {
            triangle: Arc::clone(&self.values),
            num_graphs: self.members.len(),
            normalize: self.config.normalize,
        }
    }

    /// The pair's content identity over the *raw* (unprepared) structures,
    /// in request order — the cheap key duplicate in-flight requests
    /// coalesce on before the per-structure preprocessing runs.
    /// Content-identical raw pairs prepare identically, so raw-key groups
    /// are exactly the prepared-key groups. The sides are deliberately NOT
    /// order-normalized: a solved request's nodal vector is laid out in
    /// the request's orientation, so `(A, B)` and `(B, A)` must form
    /// separate groups (the second resolves from the symmetric cache entry
    /// the first inserts). The normalized prepared key
    /// ([`prepare_pair`](Self::prepare_pair)) is still what the
    /// [`PairCache`] answers by.
    pub fn raw_pair_sides(&self, left: &Graph<V, E>, right: &Graph<V, E>) -> (PairSide, PairSide) {
        (self.raw_side(left), self.raw_side(right))
    }

    /// The collision-hardened content identity of one raw structure — the
    /// reorder cache's key.
    fn raw_side(&self, g: &Graph<V, E>) -> PairSide {
        PairSide::new((self.hasher)(g), g.num_vertices() as u32, g.num_edges() as u32)
    }

    /// Whether prepared structures are worth caching: the cache has
    /// capacity and the configured preprocessing actually does something
    /// (identity preparation has no output to reuse — a lookup would cost
    /// a content hash to save a clone).
    fn reorder_cache_active(&self) -> bool {
        self.config.reorder_cache_capacity > 0 && !self.prep_solver.preparation_is_identity()
    }

    /// Apply the per-structure preprocessing through the reorder cache:
    /// a structure the service has already prepared (on either lane) comes
    /// back as a shared pointer without touching the reordering pass.
    fn prepare_structure(&mut self, g: &Graph<V, E>) -> Arc<Graph<V, E>> {
        if !self.reorder_cache_active() {
            return Arc::new(self.prep_solver.prepare(g).unwrap_or_else(|| g.clone()));
        }
        let key = self.raw_side(g);
        if let Some(prepared) = self.reorder.get(key) {
            self.metrics.reorder_hits.inc();
            return Arc::clone(prepared);
        }
        self.metrics.reorder_misses.inc();
        let prepared = Arc::new(self.prep_solver.prepare(g).unwrap_or_else(|| g.clone()));
        self.reorder.insert(key, Arc::clone(&prepared));
        prepared
    }

    /// Prepare a request pair for the request lane: apply the per-structure
    /// preprocessing and compute the pair's content identity, *without*
    /// solving anything. The returned key is what the [`PairCache`] answers
    /// by (duplicate in-flight requests coalesce earlier, on
    /// [`raw_pair_key`](Self::raw_pair_key)). Structures the service has
    /// already prepared — on a previous request or at batch admission —
    /// come back from the reorder cache as shared pointers
    /// ([`ServiceStats::reorder_hits`]) instead of re-running the
    /// preprocessing.
    pub fn prepare_pair(&mut self, left: &Graph<V, E>, right: &Graph<V, E>) -> PreparedPair<V, E> {
        let watch = Stopwatch::start();
        let left = self.prepare_structure(left);
        let right = self.prepare_structure(right);
        let left_hash = (self.hasher)(&left);
        let right_hash = (self.hasher)(&right);
        let key = PairKey::new(
            PairSide::new(left_hash, left.num_vertices() as u32, left.num_edges() as u32),
            PairSide::new(right_hash, right.num_vertices() as u32, right.num_edges() as u32),
        );
        let prepare_ns = watch.elapsed_ns();
        self.metrics.stage_prepare.record(prepare_ns);
        PreparedPair { left, right, key, left_hash, right_hash, prepare_ns }
    }

    /// Answer a request straight from the [`PairCache`], if an entry of
    /// adequate precision exists — the request never touches the solve
    /// lane. Counted in [`ServiceStats::request_cache_answers`].
    pub fn cached_answer(&mut self, key: PairKey, wanted: Precision) -> Option<CachedEntry> {
        let entry = self.cache.get(key)?.clone();
        if !entry.answers(wanted) {
            return None;
        }
        self.metrics.request_cache_answers.inc();
        Some(entry)
    }

    /// Solve one prepared request at the [`Scalar`] instantiation `T`,
    /// warm-started from the donor pool, and fold the result into the pair
    /// cache and the donors — so the *next* request for this pair is a
    /// cache answer and neighboring requests inherit the nodal solution as
    /// a starting guess.
    pub fn solve_request<T: Scalar>(
        &mut self,
        pair: &PreparedPair<V, E>,
    ) -> Result<KernelResult<T>, SolverError> {
        let solved = self.solve_prepared::<T>(pair);
        self.fold_request_solve(pair, solved, precision_of::<T>())
    }

    /// The *pure* half of a request solve: read warm-start candidates from
    /// the donor pool, run the pair solver at `T`, and report the raw
    /// outcome without touching the pair cache or the donors. Takes
    /// `&self`, so the scheduler's drain loop can fan distinct groups out
    /// across the worker pool concurrently (the stage histogram it records
    /// into is atomic); the single-writer fold stays on the owning thread
    /// in [`fold_request_solve`](Self::fold_request_solve).
    pub fn solve_prepared<T: Scalar>(&self, pair: &PreparedPair<V, E>) -> RequestSolve<T> {
        let donor_key = (pair.left_hash, pair.right.num_vertices());
        let candidates: Vec<&[f32]> = if self.config.warm_start {
            self.donors.candidates(&donor_key).collect()
        } else {
            Vec::new()
        };
        let warmed = !candidates.is_empty();
        let solve_watch = Stopwatch::start();
        let result = self.pair_solver.kernel_with_candidates_at::<T, V, E>(
            &pair.left,
            &pair.right,
            &candidates,
        );
        let solve_ns = solve_watch.elapsed_ns();
        self.metrics.stage_solve.record(solve_ns);
        RequestSolve { result, warmed, solve_ns }
    }

    /// [`solve_prepared`](Self::solve_prepared) on the mixed-precision
    /// refinement path: f32 inner PCG sweeps with f64 residual
    /// corrections, the f64-quality result un-narrowed. Serves
    /// [`Precision::Refined`] request groups; fold the outcome with
    /// `Precision::Refined` so the cache entry answers later f64 (and
    /// refined) requests.
    pub fn solve_prepared_refined(&self, pair: &PreparedPair<V, E>) -> RequestSolve<f64> {
        let donor_key = (pair.left_hash, pair.right.num_vertices());
        let candidates: Vec<&[f32]> = if self.config.warm_start {
            self.donors.candidates(&donor_key).collect()
        } else {
            Vec::new()
        };
        let warmed = !candidates.is_empty();
        let solve_watch = Stopwatch::start();
        let result =
            self.pair_solver.kernel_refined_with_candidates(&pair.left, &pair.right, &candidates);
        let solve_ns = solve_watch.elapsed_ns();
        self.metrics.stage_solve.record(solve_ns);
        RequestSolve { result, warmed, solve_ns }
    }

    /// The *stateful* half of a request solve: account the outcome and
    /// fold a success into the pair cache and the donor pool. Must run on
    /// the thread that owns the service (the scheduler thread) — cache,
    /// donors and their recency bookkeeping are single-writer. `precision`
    /// is the tag the cache entry is stored under; pass
    /// [`Precision::Refined`] for refined solves so the entry's f64-quality
    /// value is recorded as such.
    pub fn fold_request_solve<T: Scalar>(
        &mut self,
        pair: &PreparedPair<V, E>,
        solved: RequestSolve<T>,
        precision: Precision,
    ) -> Result<KernelResult<T>, SolverError> {
        match solved.result {
            Ok(mut r) => {
                self.metrics.request_solves.inc();
                self.metrics.total_iterations.add(r.iterations as u64);
                if solved.warmed {
                    self.metrics.warm_started.inc();
                }
                r.traffic.export_to(&self.metrics.traffic);
                let fold_watch = Stopwatch::start();
                let entry = CachedEntry {
                    value: r.value.to_f32(),
                    value_f64: r.value_f64,
                    precision,
                    relative_residual: r.relative_residual,
                    iterations: r.iterations,
                };
                self.persist_pair(pair.key, &entry);
                self.cache.insert(pair.key, entry);
                if self.config.warm_start || self.config.nodal_cache_capacity > 0 {
                    if let Some(nodal) = &r.nodal {
                        // one narrowed vector, Arc-shared between the nodal
                        // side-cache (request orientation) and the donor pool
                        let narrowed =
                            Arc::new(nodal.iter().map(|&v| v.to_f32()).collect::<Vec<f32>>());
                        if self.config.nodal_cache_capacity > 0 {
                            self.nodal.insert(pair.ordered_sides(), Arc::clone(&narrowed));
                        }
                        if self.config.warm_start {
                            self.donors.donate(
                                (pair.left_hash, pair.right.num_vertices()),
                                pair.right_hash,
                                narrowed.as_ref().clone(),
                                r.iterations,
                            );
                        }
                    }
                }
                let fold_ns = fold_watch.elapsed_ns();
                self.metrics.stage_fold.record(fold_ns);
                r.stages.prepare_ns = pair.prepare_ns;
                r.stages.solve_ns = solved.solve_ns;
                r.stages.fold_ns = fold_ns;
                Ok(r)
            }
            Err(e) => {
                self.metrics.failures.inc();
                Err(e)
            }
        }
    }

    /// The content hasher this service keys caches and donors by — the
    /// same pure function a cluster router must use so pair routing agrees
    /// with every shard's own identity computation (and stays stable
    /// across restarts).
    pub fn content_hasher(&self) -> fn(&Graph<V, E>) -> u64 {
        self.hasher
    }

    /// Record request-lane outcomes decided by the scheduler (coalesced,
    /// expired and cancelled tickets never reach a service solve, but they
    /// belong in the same stats block).
    pub(crate) fn note_requests_coalesced(&mut self, n: usize) {
        self.metrics.requests_coalesced.add(n as u64);
    }

    /// A ticket whose deadline had already passed at drain: it died
    /// waiting in the command queue.
    pub(crate) fn note_request_expired_in_queue(&mut self) {
        self.metrics.requests_expired_in_queue.inc();
    }

    /// A ticket alive at drain that expired before its group's solve
    /// started (earlier groups of the same drain were solving).
    pub(crate) fn note_request_expired_pre_solve(&mut self) {
        self.metrics.requests_expired_pre_solve.inc();
    }

    pub(crate) fn note_request_cancelled(&mut self) {
        self.metrics.requests_cancelled.inc();
    }

    /// Attach a durability plane: open (or create) the store at
    /// `config.dir`, replay everything it recovered into the pair cache,
    /// resume the version counter from the recovered epoch, and persist
    /// every solve from here on.
    ///
    /// Call before handing the service to a scheduler (or use
    /// [`GramScheduler::spawn_durable`](crate::GramScheduler::spawn_durable),
    /// which does both). Replay folds the newest snapshot's entries first
    /// and the log tail after, so a tail record that re-solved a pair wins.
    /// A torn final log record — the signature of a crash mid-append — is
    /// skipped and counted ([`ServiceStats::store_torn_tail`]); checksum
    /// corruption and format-version skew are refused with the typed
    /// [`StoreError`](mgk_store::StoreError).
    pub fn attach_store(
        &mut self,
        config: DurabilityConfig,
    ) -> Result<RecoveryReport, mgk_store::StoreError> {
        let (store, recovery) = mgk_store::PairStore::open(&config.dir, config.fsync)?;
        // EveryFlush boundaries group-commit on a dedicated sync thread;
        // the synchronous policies (EveryRecord, Off) need no helper
        let syncer = match config.fsync {
            mgk_store::FsyncPolicy::EveryFlush => {
                Some(crate::persist::WalSyncer::spawn(store.sync_handle()?))
            }
            _ => None,
        };
        let mut replayed = 0usize;
        for stored in recovery.all_entries() {
            let (key, entry) = entry_from_stored(stored);
            self.cache.insert(key, entry);
            replayed += 1;
        }
        self.metrics.store_replayed.add(replayed as u64);
        if recovery.torn_tail {
            self.metrics.store_torn_tail.inc();
        }
        // resume the epoch counter monotonically: the next admitting flush
        // publishes strictly after everything a previous life published
        self.version = self.version.max(recovery.epoch);
        let snapshot_graphs = recovery.snapshot.as_ref().map_or(0, |s| s.num_graphs());
        if let Some(snap) = recovery.snapshot.as_ref().filter(|s| s.num_graphs() > 0) {
            // the recovered triangle is published read-only at the
            // snapshot's own epoch; members are not persisted (labels are
            // generic), so re-submitting the corpus rebuilds the live
            // matrix through cache hits
            self.recovered = Some((
                snap.epoch,
                SnapshotSource::from_triangle(
                    snap.triangle.clone(),
                    snap.num_graphs(),
                    self.config.normalize,
                ),
            ));
        }
        self.store = Some(ServiceStore {
            store,
            syncer,
            snapshot_every: config.snapshot_every,
            flushes_since_snapshot: 0,
        });
        Ok(RecoveryReport {
            epoch: recovery.epoch,
            replayed,
            snapshot_graphs,
            torn_tail: recovery.torn_tail,
        })
    }

    /// Whether a store is currently attached (false after an I/O error
    /// detached it).
    pub fn store_attached(&self) -> bool {
        self.store.is_some()
    }

    /// The attached store's directory, if any.
    pub fn store_dir(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(crate::persist::store_dir)
    }

    /// Number of retained nodal vectors (bounded by
    /// [`GramServiceConfig::nodal_cache_capacity`]).
    pub fn nodal_cache_len(&self) -> usize {
        self.nodal.len()
    }

    /// The triangle recovered from the newest store snapshot, handed to
    /// the scheduler exactly once for publication as the initial epoch.
    pub(crate) fn take_recovered_source(&mut self) -> Option<(u64, SnapshotSource)> {
        self.recovered.take()
    }

    /// The nodal side-cache lookup behind `f32` cache answers: the vector
    /// the *ordered* pair solved with, if still retained. Counts hits and
    /// misses; the mirrored orientation misses by design (its vector would
    /// need a transpose permutation — costlier than the miss).
    pub(crate) fn cached_nodal(&mut self, pair: &PreparedPair<V, E>) -> Option<Vec<f32>> {
        if self.config.nodal_cache_capacity == 0 {
            return None;
        }
        match self.nodal.get(pair.ordered_sides()) {
            Some(nodal) => {
                self.metrics.nodal_hits.inc();
                Some(nodal.as_ref().clone())
            }
            None => {
                self.metrics.nodal_misses.inc();
                None
            }
        }
    }

    /// Append one solved pair to the WAL (no-op without a store). A store
    /// I/O error detaches the store — serving continues, durability stops —
    /// rather than poisoning the solve path.
    fn persist_pair(&mut self, key: PairKey, entry: &CachedEntry) {
        let Some(service_store) = self.store.as_mut() else { return };
        let stored = entry_to_stored(&key, entry);
        match service_store.store.append_pair(&stored) {
            Ok(appended) => {
                self.metrics.store_appends.inc();
                self.metrics.store_bytes.add(appended.bytes);
                if appended.synced {
                    self.metrics.store_fsyncs.inc();
                }
            }
            Err(_) => {
                self.store = None;
            }
        }
    }

    /// The durability boundary of an admitting flush: append the epoch
    /// mark, fsync everything the batches appended (under the
    /// `EveryFlush` policy), and capture a cadence snapshot when due —
    /// all off the solve path, timed into the `persist` stage histogram.
    fn persist_flush_boundary(&mut self) {
        let Some(mut s) = self.store.take() else { return };
        let watch = Stopwatch::start();
        s.flushes_since_snapshot += 1;
        let snapshot_due = s.snapshot_every > 0 && s.flushes_since_snapshot >= s.snapshot_every;
        let epoch = self.version;
        let result = (|| -> Result<(u64, u64), mgk_store::StoreError> {
            let appended = s.store.mark_epoch(epoch)?;
            let mut fsyncs = u64::from(appended.synced);
            match &s.syncer {
                Some(syncer) => match syncer.schedule() {
                    SyncScheduled::Scheduled => fsyncs += 1,
                    SyncScheduled::Coalesced => {}
                    SyncScheduled::Failed => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::BrokenPipe,
                            "WAL sync thread died",
                        )
                        .into());
                    }
                },
                None => {
                    if s.store.flush_boundary()? {
                        fsyncs += 1;
                    }
                }
            }
            if snapshot_due {
                s.store.write_snapshot(&self.capture_store_snapshot())?;
                s.flushes_since_snapshot = 0;
            }
            Ok((appended.bytes, fsyncs))
        })();
        match result {
            Ok((bytes, fsyncs)) => {
                self.metrics.store_appends.inc();
                self.metrics.store_bytes.add(bytes);
                self.metrics.store_fsyncs.add(fsyncs);
                self.store = Some(s);
            }
            Err(_) => {
                // degrade: the store stays detached, serving continues
            }
        }
        self.metrics.stage_persist.record(watch.elapsed_ns());
    }

    /// The durability boundary of a request drain: sync whatever the
    /// request-lane folds appended since the last boundary — scheduled on
    /// the group-commit thread under `EveryFlush`, so the ticket already
    /// resolved and the next drain's solves overlap the sync's I/O wait.
    pub(crate) fn persist_request_boundary(&mut self) {
        let Some(s) = self.store.as_mut() else { return };
        let watch = Stopwatch::start();
        match &s.syncer {
            Some(syncer) => match syncer.schedule() {
                SyncScheduled::Scheduled => {
                    self.metrics.store_fsyncs.inc();
                    self.metrics.stage_persist.record(watch.elapsed_ns());
                }
                SyncScheduled::Coalesced => {}
                SyncScheduled::Failed => {
                    self.store = None;
                }
            },
            None => match s.store.flush_boundary() {
                Ok(synced) => {
                    if synced {
                        self.metrics.store_fsyncs.inc();
                        self.metrics.stage_persist.record(watch.elapsed_ns());
                    }
                }
                Err(_) => {
                    self.store = None;
                }
            },
        }
    }

    /// Graceful-shutdown snapshot: capture the full serving state so the
    /// next life replays a snapshot instead of a long log tail.
    pub(crate) fn persist_final_snapshot(&mut self) {
        let Some(mut s) = self.store.take() else { return };
        let watch = Stopwatch::start();
        let snapshot = self.capture_store_snapshot();
        if s.store.write_snapshot(&snapshot).is_ok() {
            s.flushes_since_snapshot = 0;
            self.store = Some(s);
        }
        self.metrics.stage_persist.record(watch.elapsed_ns());
    }

    /// The current serving state as a store snapshot: epoch, member
    /// identities, the raw triangle, and every live cache entry. Cache
    /// entries are captured because request-lane solves never enter the
    /// triangle — without them, truncating the log after a snapshot would
    /// silently forget every answered request.
    fn capture_store_snapshot(&self) -> mgk_store::StoreSnapshot {
        mgk_store::StoreSnapshot {
            epoch: self.version,
            sides: self.members.iter().map(|m| side_to_stored(&m.side())).collect(),
            triangle: self.values.as_ref().clone(),
            entries: self.cache.iter().map(|(k, e)| entry_to_stored(k, e)).collect(),
        }
    }
}

/// The raw outcome of the pure half of a request solve
/// ([`GramService::solve_prepared`]), before its stateful fold
/// ([`GramService::fold_request_solve`]). Opaque by design: worker threads
/// produce it, the owning scheduler thread consumes it.
#[derive(Debug)]
pub struct RequestSolve<T: Scalar> {
    result: Result<KernelResult<T>, SolverError>,
    warmed: bool,
    solve_ns: u64,
}

/// A request pair after per-structure preprocessing, carrying its content
/// identity: the coalescing/caching unit of the request lane.
#[derive(Debug, Clone)]
pub struct PreparedPair<V, E> {
    left: Arc<Graph<V, E>>,
    right: Arc<Graph<V, E>>,
    key: PairKey,
    left_hash: u64,
    right_hash: u64,
    /// Wall-clock of the preparation that produced this pair, stamped onto
    /// the `StageBreakdown` of every result answered for it.
    prepare_ns: u64,
}

impl<V, E> PreparedPair<V, E> {
    /// The order-normalized, collision-hardened identity of the pair.
    pub fn key(&self) -> PairKey {
        self.key
    }

    /// Nanoseconds the per-structure preprocessing of this pair took
    /// (zero when both sides came straight from the reorder cache — the
    /// cached pointers cost only a hash lookup).
    pub fn prepare_ns(&self) -> u64 {
        self.prepare_ns
    }

    /// The pair's content identity in *request order* (not normalized) —
    /// the orientation-sensitive key of the nodal side-cache.
    pub(crate) fn ordered_sides(&self) -> (PairSide, PairSide) {
        (
            PairSide::new(
                self.left_hash,
                self.left.num_vertices() as u32,
                self.left.num_edges() as u32,
            ),
            PairSide::new(
                self.right_hash,
                self.right.num_vertices() as u32,
                self.right.num_edges() as u32,
            ),
        )
    }
}

/// The [`Precision`] tag of a [`Scalar`] instantiation — the single source
/// of truth for both the request lane's cache gating and the entries it
/// writes.
pub(crate) fn precision_of<T: Scalar>() -> Precision {
    if T::BYTES == 8 {
        Precision::F64
    } else {
        Precision::F32
    }
}

/// Index of entry `(i, j)`, `j <= i`, in the growing lower triangle.
fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_core::{GramConfig, GramEngine};
    use mgk_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                if k % 2 == 0 {
                    generators::newman_watts_strogatz(12 + k % 5, 2, 0.2, &mut rng)
                } else {
                    generators::barabasi_albert(10 + k % 4, 2, &mut rng)
                }
            })
            .collect()
    }

    fn service(
        config: GramServiceConfig,
    ) -> GramService<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    > {
        GramService::new(MarginalizedKernelSolver::unlabeled(SolverConfig::default()), config)
    }

    #[test]
    fn incremental_extension_matches_fresh_batch_computation() {
        let graphs = dataset(10, 3);
        let (first, second) = graphs.split_at(6);

        let mut svc = service(GramServiceConfig::default());
        for g in first {
            svc.submit(g.clone()).unwrap();
        }
        let executed_first = svc.flush();
        assert_eq!(executed_first, 6 * 7 / 2);
        let jobs_after_first = svc.stats().jobs_executed;

        for g in second {
            svc.submit(g.clone()).unwrap();
        }
        let snapshot = svc.snapshot();

        // only the new row/column blocks were computed
        let total_pairs = 10 * 11 / 2;
        assert_eq!(svc.stats().jobs_executed, total_pairs);
        assert_eq!(svc.stats().jobs_executed - jobs_after_first, total_pairs - 6 * 7 / 2);

        // and the result agrees with a from-scratch batch computation
        let engine = GramEngine::new(
            MarginalizedKernelSolver::unlabeled(SolverConfig::default()),
            GramConfig::default(),
        );
        let batch = engine.compute(&graphs);
        assert_eq!(snapshot.num_graphs, batch.num_graphs);
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (snapshot.get(i, j), batch.get(i, j));
                assert!((a - b).abs() < 1e-4, "entry ({i},{j}): incremental {a} vs batch {b}");
            }
        }
    }

    #[test]
    fn resubmitted_structures_are_served_from_the_cache() {
        let graphs = dataset(4, 7);
        let mut svc = service(GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        let solved = svc.stats().jobs_executed;
        assert_eq!(solved, 4 * 5 / 2);

        // resubmit two structures verbatim: every new pair is content-equal
        // to an already-cached one, so no job runs
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[2].clone()).unwrap();
        let executed = svc.flush();
        assert_eq!(executed, 0, "cached entries must not be recomputed");
        assert_eq!(svc.stats().jobs_executed, solved);
        // rows 4 and 5 add 5 + 6 content-cached pairs
        assert!(svc.stats().cache_hits >= 11);

        // the duplicate row mirrors the original in the snapshot
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 6);
        for j in 0..6 {
            if j == 0 || j == 4 {
                continue; // self-similarity columns normalize to 1 anyway
            }
            let (orig, dup) = (snap.get(0, j), snap.get(4, j));
            assert!((orig - dup).abs() < 1e-6, "row 4 should mirror row 0 at column {j}");
        }
    }

    #[test]
    fn backpressure_bounds_the_pending_queue() {
        let graphs = dataset(3, 11);
        let mut svc = service(GramServiceConfig { max_pending: 2, ..Default::default() });
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[1].clone()).unwrap();
        match svc.submit(graphs[2].clone()) {
            Err(GramServiceError::Backpressure { pending: 2, capacity: 2 }) => {}
            other => panic!("expected backpressure, got {other:?}"),
        }
        svc.flush();
        svc.submit(graphs[2].clone()).unwrap();
        assert_eq!(svc.num_pending(), 1);
    }

    #[test]
    fn empty_structures_are_rejected() {
        let mut svc = service(GramServiceConfig::default());
        let empty: Graph = Graph::from_edge_list(0, &[]);
        assert_eq!(svc.submit(empty), Err(GramServiceError::EmptyStructure));
    }

    #[test]
    fn warm_starts_occur_and_do_not_change_values() {
        // same-sized graphs so every solve after the first has a donor
        let mut rng = StdRng::seed_from_u64(23);
        let graphs: Vec<Graph> =
            (0..6).map(|_| generators::newman_watts_strogatz(16, 2, 0.15, &mut rng)).collect();

        // small batches: donors are snapshotted per batch, so warm starts
        // only kick in from the second batch of a flush onward
        let mut warm_svc = service(GramServiceConfig { batch_size: 4, ..Default::default() });
        let mut cold_svc =
            service(GramServiceConfig { warm_start: false, batch_size: 4, ..Default::default() });
        for g in &graphs {
            warm_svc.submit(g.clone()).unwrap();
            cold_svc.submit(g.clone()).unwrap();
        }
        let warm_snap = warm_svc.snapshot();
        let cold_snap = cold_svc.snapshot();

        assert!(warm_svc.stats().warm_started > 0, "no solve used a warm start");
        assert_eq!(cold_svc.stats().warm_started, 0);
        for (a, b) in warm_snap.matrix.iter().zip(&cold_snap.matrix) {
            assert!((a - b).abs() < 1e-4, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn warm_starts_cut_iterations_on_similar_structures() {
        // the realistic streaming case: variants of one structure (same
        // topology, slightly different random-walk parameters) arrive over
        // time — donors are nearly exact and the residual guard never has
        // to discard them
        let mut rng = StdRng::seed_from_u64(29);
        let base = generators::newman_watts_strogatz(16, 2, 0.15, &mut rng);
        let variants: Vec<Graph> = (0..8)
            .map(|k| base.clone().with_uniform_stopping_probability(0.05 + 1e-4 * k as f32))
            .collect();

        let run = |warm_start: bool| {
            let mut svc =
                service(GramServiceConfig { warm_start, batch_size: 4, ..Default::default() });
            for g in &variants {
                svc.submit(g.clone()).unwrap();
            }
            let snap = svc.snapshot();
            (svc.stats(), snap)
        };
        let (warm_stats, warm_snap) = run(true);
        let (cold_stats, cold_snap) = run(false);

        assert!(warm_stats.warm_started > 0);
        assert!(
            warm_stats.total_iterations < cold_stats.total_iterations,
            "warm starts should cut iterations on near-identical systems: warm {} vs cold {}",
            warm_stats.total_iterations,
            cold_stats.total_iterations
        );
        for (a, b) in warm_snap.matrix.iter().zip(&cold_snap.matrix) {
            assert!((a - b).abs() < 1e-4, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn snapshot_is_symmetric_normalized_and_psd_like() {
        let graphs = dataset(5, 19);
        let mut svc = service(GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 5);
        for i in 0..5 {
            assert!((snap.get(i, i) - 1.0).abs() < 1e-5);
            for j in 0..5 {
                assert_eq!(snap.get(i, j), snap.get(j, i));
                assert!(snap.get(i, j) > 0.0 && snap.get(i, j) <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn duplicates_within_one_flush_are_solved_once() {
        let graphs = dataset(3, 53);
        let mut svc = service(GramServiceConfig::default());
        // submit each structure twice before the first flush: every
        // content-duplicate pair must resolve from the representative's
        // cache entry, not a second solve
        for g in graphs.iter().chain(graphs.iter()) {
            svc.submit(g.clone()).unwrap();
        }
        let executed = svc.flush();
        assert_eq!(executed, 3 * 4 / 2, "only unique content pairs are solved");
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 6);
        assert!(snap.matrix.iter().all(|v| v.is_finite()));
        // rows of a duplicate mirror the original
        for j in 0..6 {
            assert!((snap.get(1, j) - snap.get(4, j)).abs() < 1e-6, "column {j}");
        }
    }

    #[test]
    fn zero_max_pending_is_clamped_to_one() {
        let graphs = dataset(1, 59);
        let mut svc = service(GramServiceConfig { max_pending: 0, ..Default::default() });
        svc.submit(graphs[0].clone()).expect("a zero queue bound must not reject everything");
        assert_eq!(svc.snapshot().num_graphs, 1);
        let ids = svc.submit_all(graphs.clone());
        assert_eq!(ids.len(), 1, "submit_all must not silently drop structures");
    }

    #[test]
    fn donor_pool_is_bounded() {
        let graphs = dataset(6, 61);
        let mut svc =
            service(GramServiceConfig { donor_capacity: 3, batch_size: 2, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert!(svc.donor_len() <= 3, "donor pool exceeded its bound: {}", svc.donor_len());
    }

    #[test]
    fn failed_solves_leave_nan_entries_not_raw_values() {
        let graphs = dataset(3, 67);
        // a 1-iteration budget at an unreachable tolerance: every solve fails
        let solver = MarginalizedKernelSolver::unlabeled(SolverConfig {
            solve: mgk_linalg::SolveOptions { max_iterations: 1, tolerance: 1e-30 },
            ..SolverConfig::default()
        });
        let mut svc = GramService::new(solver, GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let snap = svc.snapshot();
        assert_eq!(svc.stats().failures, 3 * 4 / 2);
        assert!(
            snap.matrix.iter().all(|v| v.is_nan()),
            "failed entries must be NaN-marked, never raw-scale values"
        );
    }

    #[test]
    fn cache_capacity_bounds_memory() {
        let graphs = dataset(6, 31);
        let mut svc = service(GramServiceConfig { cache_capacity: 5, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert!(svc.cache_len() <= 5);
    }

    #[test]
    fn forced_hash_collision_cannot_serve_a_wrong_kernel_value() {
        // every structure hashes to the same 64-bit value: before the
        // PairKey widening, the second distinct graph's pairs would be
        // served from the first one's cache entries
        let collide: fn(&Graph) -> u64 = |_| 0xDEAD_BEEF;
        let path = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let cycle = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);

        let mut svc = service(GramServiceConfig::default()).with_content_hasher(collide);
        svc.submit(path.clone()).unwrap();
        svc.submit(cycle.clone()).unwrap();
        let snap = svc.snapshot();

        // the collision was observed …
        assert!(svc.stats().hash_collisions >= 1, "collision went unobserved");
        // … and despite it, all three distinct pairs were solved, none
        // aliased to another's cache entry
        assert_eq!(svc.stats().jobs_executed, 3);
        assert_eq!(svc.stats().cache_hits, 0);

        // values agree with an un-collided reference service
        let mut reference = service(GramServiceConfig::default());
        reference.submit(path).unwrap();
        reference.submit(cycle).unwrap();
        let expected = reference.snapshot();
        for i in 0..2 {
            for j in 0..2 {
                let (a, b) = (snap.get(i, j), expected.get(i, j));
                assert!((a - b).abs() < 1e-5, "entry ({i},{j}): collided {a} vs reference {b}");
            }
        }
        assert!(
            (snap.get(0, 1) - 1.0).abs() > 1e-3,
            "off-diagonal must not alias the self-similarity entry"
        );
    }

    #[test]
    fn version_bumps_once_per_admitting_flush() {
        let graphs = dataset(4, 71);
        let mut svc = service(GramServiceConfig::default());
        assert_eq!(svc.version(), 0);
        svc.flush();
        assert_eq!(svc.version(), 0, "an empty flush must not bump the version");
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[1].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.version(), 1);
        svc.flush();
        assert_eq!(svc.version(), 1);
        svc.submit(graphs[2].clone()).unwrap();
        svc.snapshot();
        assert_eq!(svc.version(), 2);
    }

    #[test]
    fn donor_pool_keeps_the_better_donor_and_evicts_lru() {
        let mut pool = DonorPool::new(2, 1);
        let first = |pool: &DonorPool, key: &(u64, usize)| -> Option<Vec<f32>> {
            pool.candidates(key).next().map(|s| s.to_vec())
        };
        pool.donate((1, 10), 0, vec![1.0], 5);
        pool.donate((2, 10), 0, vec![2.0], 5);

        // an incoming solve that took MORE iterations converged from a
        // worse start: the retained donor stays
        pool.donate((1, 10), 0, vec![1.5], 9);
        assert_eq!(first(&pool, &(1, 10)), Some(vec![1.0]));
        // fewer (or equal) iterations: replace
        pool.donate((1, 10), 0, vec![1.9], 3);
        assert_eq!(first(&pool, &(1, 10)), Some(vec![1.9]));

        // (1,10) was just donated to; (2,10) is the least-recently-donated
        // key and must be the eviction victim — not an arbitrary one
        pool.donate((3, 10), 0, vec![3.0], 5);
        assert_eq!(pool.len(), 2);
        assert!(first(&pool, &(2, 10)).is_none(), "LRU donor should have been evicted");
        assert!(first(&pool, &(1, 10)).is_some());
        assert!(first(&pool, &(3, 10)).is_some());
    }

    #[test]
    fn donor_recency_is_refreshed_even_when_the_old_donor_is_kept() {
        let mut pool = DonorPool::new(2, 1);
        pool.donate((1, 10), 0, vec![1.0], 3);
        pool.donate((2, 10), 0, vec![2.0], 5);
        // key 1 is re-donated with a worse solve: vector kept, recency
        // refreshed — so key 2 is now the LRU victim
        pool.donate((1, 10), 0, vec![1.1], 8);
        pool.donate((3, 10), 0, vec![3.0], 4);
        assert!(pool.candidates(&(1, 10)).next().is_some());
        assert!(pool.candidates(&(2, 10)).next().is_none());
    }

    #[test]
    fn donor_buckets_retain_k_distinct_right_structures() {
        let mut pool = DonorPool::new(4, 2);
        pool.donate((1, 10), 100, vec![1.0], 5);
        pool.donate((1, 10), 200, vec![2.0], 5);
        let got: Vec<Vec<f32>> = pool.candidates(&(1, 10)).map(|s| s.to_vec()).collect();
        assert_eq!(got, vec![vec![2.0], vec![1.0]], "newest donation ranks first");

        // a third distinct right structure displaces the bucket's oldest
        pool.donate((1, 10), 300, vec![3.0], 5);
        let got: Vec<Vec<f32>> = pool.candidates(&(1, 10)).map(|s| s.to_vec()).collect();
        assert_eq!(got, vec![vec![3.0], vec![2.0]]);

        // re-donation for a retained right structure follows the
        // fewer-iterations rule instead of displacing anyone
        pool.donate((1, 10), 200, vec![2.5], 9);
        let got: Vec<Vec<f32>> = pool.candidates(&(1, 10)).map(|s| s.to_vec()).collect();
        assert_eq!(got, vec![vec![3.0], vec![2.0]], "worse re-donation keeps the old vector");
    }

    #[test]
    fn the_second_nearest_donor_wins_when_it_starts_closer() {
        // two donor structures for the same (left, right-dimension) key:
        // the one donated LAST (ranked first by recency) is a poor match
        // for the incoming pair, the one donated before it is nearly
        // identical — best-initial-residual selection must pick the 2nd
        let mut rng = StdRng::seed_from_u64(97);
        let base = generators::newman_watts_strogatz(16, 2, 0.15, &mut rng);
        // q values distinct from the 0.05 default so no structure aliases
        // another's cache entries; the twin sits 0.2% from the target
        let near_twin = base.clone().with_uniform_stopping_probability(0.0521);
        let far = generators::barabasi_albert(16, 3, &mut rng);
        let target = base.clone().with_uniform_stopping_probability(0.052);
        let left = base.clone();

        let run = |donors: &[&Graph], donors_per_key: usize| {
            // pinned to F32: the assertion compares iteration counts, which
            // are only meaningfully donor-sensitive at a fixed precision
            // (under MGK_TEST_PRECISION=refined the inner sweeps re-solve
            // corrections and flatten the margin)
            let solver = MarginalizedKernelSolver::unlabeled(SolverConfig {
                precision: Precision::F32,
                ..SolverConfig::default()
            });
            let mut svc = GramService::new(
                solver,
                GramServiceConfig {
                    batch_size: 1, // donations land between single-job batches
                    donors_per_key,
                    ..Default::default()
                },
            );
            // seed donors in order: the LAST one submitted is the most
            // recent donation for the shared (left, 16) key
            svc.submit(left.clone()).unwrap();
            for d in donors {
                svc.submit((*d).clone()).unwrap();
            }
            svc.flush();
            let before = svc.stats().total_iterations;
            svc.submit(target.clone()).unwrap();
            svc.flush();
            (svc.stats().total_iterations - before, svc.stats())
        };

        // near twin donated first, far structure last (most recent)
        let (best_of_two, stats) = run(&[&near_twin, &far], 2);
        assert!(stats.warm_started > 0);
        // with a 1-deep bucket only the far donor is retained
        let (latest_only, _) = run(&[&near_twin, &far], 1);
        assert!(
            best_of_two < latest_only,
            "the 2nd-nearest donor must win: best-of-2 took {best_of_two} iterations, \
             latest-only {latest_only}"
        );
    }

    #[test]
    fn snapshot_capture_is_arc_shared_and_copies_only_under_contention() {
        let graphs = dataset(5, 301);
        let mut svc = service(GramServiceConfig::default());
        for g in &graphs[..3] {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert_eq!(svc.stats().triangle_copies, 0, "an unshared triangle mutates in place");

        // capture keeps the triangle alive; the next flush must clone once
        let held = svc.snapshot_source();
        svc.submit(graphs[3].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.stats().triangle_copies, 1, "a flush under a live capture clones once");
        // the held source still builds the snapshot it captured
        assert_eq!(held.build().num_graphs, 3);
        drop(held);

        svc.submit(graphs[4].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.stats().triangle_copies, 1, "no capture alive, no copy");
    }

    #[test]
    fn service_requests_solve_cache_and_gate_precision() {
        let graphs = dataset(2, 311);
        let mut svc = service(GramServiceConfig::default());
        let pair = svc.prepare_pair(&graphs[0], &graphs[1]);
        assert!(svc.cached_answer(pair.key(), Precision::F32).is_none(), "cold cache");

        let narrow: KernelResult<f32> = svc.solve_request::<f32>(&pair).unwrap();
        assert!(narrow.converged);
        assert!(narrow.nodal.is_some(), "request solves retain nodal vectors for donors");
        assert_eq!(svc.stats().request_solves, 1);

        // the pair is now cache-answerable for f32 …
        let entry = svc.cached_answer(pair.key(), Precision::F32).expect("f32 answer");
        assert_eq!(entry.value, narrow.value);
        assert_eq!(svc.stats().request_cache_answers, 1);
        // … but an f32-solved entry must not answer an f64 request
        assert!(svc.cached_answer(pair.key(), Precision::F64).is_none());

        let wide: KernelResult<f64> = svc.solve_request::<f64>(&pair).unwrap();
        assert!(wide.nodal.is_some());
        assert!((wide.value - narrow.value_f64).abs() <= 1e-4 * wide.value.abs());
        // the f64 solve upgraded the cache entry: both precisions answer now
        assert!(svc.cached_answer(pair.key(), Precision::F64).is_some());
        assert!(svc.cached_answer(pair.key(), Precision::F32).is_some());
    }

    #[test]
    fn request_solves_feed_the_flush_lane_cache() {
        let graphs = dataset(2, 317);
        let mut svc = service(GramServiceConfig::default());
        // answer a request first …
        let pair = svc.prepare_pair(&graphs[0], &graphs[1]);
        svc.solve_request::<f32>(&pair).unwrap();
        let self_left = svc.prepare_pair(&graphs[0], &graphs[0]);
        svc.solve_request::<f32>(&self_left).unwrap();

        // … then admit the same structures: the (0,1) and (0,0) entries
        // come from the request lane's cache entries, not fresh solves
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[1].clone()).unwrap();
        svc.flush();
        assert!(svc.stats().cache_hits >= 2, "flush must reuse request-lane entries");
        assert_eq!(svc.stats().jobs_executed, 1, "only the (1,1) self-pair is new");
    }

    #[test]
    fn batched_scheduling_covers_all_jobs() {
        let graphs = dataset(7, 43);
        let mut svc = service(GramServiceConfig { batch_size: 3, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let executed = svc.flush();
        assert_eq!(executed, 7 * 8 / 2);
        assert_eq!(svc.stats().batches, (7usize * 8 / 2).div_ceil(3));
        let snap = svc.snapshot();
        assert!(snap.matrix.iter().all(|v| v.is_finite()));
    }

    /// A service whose per-structure preprocessing actually reorders (the
    /// paper's PBR), so the reorder cache has output to share.
    fn reordering_service(
        config: GramServiceConfig,
    ) -> GramService<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    > {
        let solver = MarginalizedKernelSolver::unlabeled(SolverConfig {
            reorder: ReorderMethod::Pbr,
            ..SolverConfig::default()
        });
        GramService::new(solver, config)
    }

    #[test]
    fn reorder_cache_serves_resubmitted_structures_on_both_lanes() {
        let graphs = dataset(3, 131);
        let mut svc = reordering_service(GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert_eq!(svc.stats().reorder_misses, 3, "first admission prepares every structure");
        assert_eq!(svc.stats().reorder_hits, 0);

        // batch lane: resubmitting a structure reuses its prepared form
        svc.submit(graphs[0].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.stats().reorder_hits, 1, "resubmission must hit the reorder cache");
        assert_eq!(svc.stats().reorder_misses, 3);

        // request lane: a request over admitted structures prepares nothing
        let pair = svc.prepare_pair(&graphs[1], &graphs[2]);
        assert_eq!(svc.stats().reorder_hits, 3, "both request sides were already prepared");
        assert_eq!(svc.stats().reorder_misses, 3);
        svc.solve_request::<f32>(&pair).unwrap();

        // and a request lane miss seeds the cache for later admission
        let extra = dataset(4, 131)[3].clone();
        svc.prepare_pair(&extra, &graphs[0]);
        assert_eq!(svc.stats().reorder_misses, 4);
        svc.submit(extra).unwrap();
        svc.flush();
        assert_eq!(svc.stats().reorder_misses, 4, "admission reuses the request's preparation");
    }

    #[test]
    fn reorder_cache_values_match_an_uncached_service() {
        let graphs = dataset(4, 137);
        let mut cached = reordering_service(GramServiceConfig::default());
        let mut uncached = reordering_service(GramServiceConfig {
            reorder_cache_capacity: 0,
            ..Default::default()
        });
        // admit every structure once, then resubmit all of them: the
        // second flush serves every preparation from the cache
        for g in &graphs {
            cached.submit(g.clone()).unwrap();
            uncached.submit(g.clone()).unwrap();
        }
        cached.flush();
        uncached.flush();
        for g in &graphs {
            cached.submit(g.clone()).unwrap();
            uncached.submit(g.clone()).unwrap();
        }
        let a = cached.snapshot();
        let b = uncached.snapshot();
        assert!(cached.stats().reorder_hits >= 4, "duplicates must hit the cache");
        assert_eq!(uncached.stats().reorder_hits, 0, "capacity 0 disables the cache");
        assert_eq!(uncached.stats().reorder_misses, 0, "a disabled cache counts nothing");
        for (x, y) in a.matrix.iter().zip(&b.matrix) {
            assert_eq!(x, y, "cached preparation must be bit-identical to uncached");
        }
    }

    #[test]
    fn forced_hash_collision_cannot_alias_prepared_structures() {
        // path and cycle share the forced content hash but differ in edge
        // count: the widened PairSide key must keep their prepared forms
        // apart — a contaminated reorder cache would hand the path's
        // reordering to the cycle and corrupt every downstream solve
        let collide: fn(&Graph) -> u64 = |_| 0xDEAD_BEEF;
        let path = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let cycle = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);

        let mut svc = reordering_service(GramServiceConfig::default()).with_content_hasher(collide);
        svc.submit(path.clone()).unwrap();
        svc.submit(cycle.clone()).unwrap();
        let snap = svc.snapshot();
        assert_eq!(svc.stats().reorder_misses, 2, "distinct structures must both prepare");
        assert_eq!(svc.stats().reorder_hits, 0, "a collision must not look like a hit");

        let mut reference = reordering_service(GramServiceConfig::default());
        reference.submit(path).unwrap();
        reference.submit(cycle).unwrap();
        let expected = reference.snapshot();
        for i in 0..2 {
            for j in 0..2 {
                let (a, b) = (snap.get(i, j), expected.get(i, j));
                assert!((a - b).abs() < 1e-5, "entry ({i},{j}): collided {a} vs reference {b}");
            }
        }
    }

    #[test]
    fn reorder_cache_eviction_respects_the_configured_bound() {
        let graphs = dataset(5, 139);
        let mut svc = reordering_service(GramServiceConfig {
            reorder_cache_capacity: 2,
            ..Default::default()
        });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert!(
            svc.reorder_cache_len() <= 2,
            "reorder cache exceeded its bound: {}",
            svc.reorder_cache_len()
        );
        assert_eq!(svc.stats().reorder_misses, 5);

        // the earliest structure was evicted: resubmitting it re-prepares
        svc.submit(graphs[0].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.stats().reorder_misses, 6, "an evicted structure must miss");
        assert!(svc.reorder_cache_len() <= 2);
    }

    #[test]
    fn identity_preparation_bypasses_the_reorder_cache() {
        // natural order, no stopping override: preparing is a no-op clone,
        // so caching it would pay a content hash to save nothing
        let graphs = dataset(2, 149);
        let solver = MarginalizedKernelSolver::unlabeled(SolverConfig {
            reorder: ReorderMethod::Natural,
            ..SolverConfig::default()
        });
        let mut svc = GramService::new(solver, GramServiceConfig::default());
        for g in graphs.iter().chain(graphs.iter()) {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        let pair = svc.prepare_pair(&graphs[0], &graphs[1]);
        svc.solve_request::<f32>(&pair).unwrap();
        assert_eq!(svc.stats().reorder_hits, 0);
        assert_eq!(svc.stats().reorder_misses, 0);
        assert_eq!(svc.reorder_cache_len(), 0);
    }
}
