//! The streaming Gram service: submit structures incrementally, read back a
//! growing Gram matrix.
//!
//! The batch [`GramEngine`](mgk_core::GramEngine) recomputes all
//! `N (N + 1) / 2` pairs from scratch on every call. For a long-lived
//! serving workload — new structures trickle in, the kernel matrix feeds a
//! downstream model after every extension — that is quadratic waste: all
//! previously computed entries are still valid. [`GramService`] keeps them:
//!
//! * **Incremental extension.** Admitting `M` new structures to an
//!   `N`-structure service schedules only the `M` new row/column blocks
//!   (`(N + M)(N + M + 1)/2 − N (N + 1)/2` pairs); existing entries are
//!   never touched.
//! * **Entry caching.** Pairs are keyed by structure *content hash*
//!   ([`graph_content_hash`]), so resubmitting a structure the service has
//!   seen turns its pairs into lookups in an LRU-bounded [`PairCache`].
//! * **Warm-started solves.** Converged nodal solutions are retained per
//!   `(left structure, right dimension)` and donated as PCG starting
//!   guesses for later pairs of the same shape (`pcg_counted_warm` in
//!   `mgk-linalg`) — the reuse argument iterative-fitting convergence
//!   results justify. This pays off when appended structures closely
//!   resemble already-solved ones (streams of conformations or perturbed
//!   variants); for unrelated structures the donated residual buys little,
//!   so `pcg_counted_warm`'s residual guard bounds the cost of an
//!   unhelpful donor to one extra operator application.
//! * **Batched scheduling with backpressure.** Submissions queue up to
//!   [`GramServiceConfig::max_pending`]; past that, [`GramService::submit`]
//!   reports [`GramServiceError::Backpressure`] so producers can throttle.
//!   [`flush`](GramService::flush) drains the queue in batches of
//!   [`GramServiceConfig::batch_size`] jobs, each batch fanned out over the
//!   persistent worker pool.
//!
//! `flush` runs on the caller's thread; to decouple producers from solve
//! latency, hand the service to a
//! [`GramScheduler`](crate::scheduler::GramScheduler), which drains the
//! queue on a background thread and publishes versioned snapshots to a
//! [`SnapshotWatch`](crate::watch::SnapshotWatch).

use std::collections::{HashMap, VecDeque};

use rayon::prelude::*;

use mgk_core::{KernelResult, MarginalizedKernelSolver, SolverConfig, SolverError};
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_reorder::ReorderMethod;

use crate::cache::{CachedEntry, PairCache, PairKey, PairSide, Recency};
use crate::hash::{graph_content_hash, ContentHash};

/// Configuration of a [`GramService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GramServiceConfig {
    /// Normalize snapshots to unit self-similarity
    /// (`K̂_ij = K_ij / sqrt(K_ii K_jj)`). Raw entries are stored
    /// unnormalized so cached values stay valid as the matrix grows.
    pub normalize: bool,
    /// Maximum queued-but-unprocessed submissions before
    /// [`GramService::submit`] reports backpressure.
    pub max_pending: usize,
    /// Pair solves scheduled per parallel batch.
    pub batch_size: usize,
    /// Capacity of the pair-entry cache (entries, not bytes).
    pub cache_capacity: usize,
    /// Donate converged solutions as warm starts for equally-sized systems.
    pub warm_start: bool,
    /// Maximum retained warm-start donor vectors (each one `n × m` floats);
    /// at capacity the least-recently-donated entry is evicted — the pool
    /// is a best-effort hint store, not a correctness structure.
    pub donor_capacity: usize,
}

impl Default for GramServiceConfig {
    fn default() -> Self {
        GramServiceConfig {
            normalize: true,
            max_pending: 1024,
            batch_size: 256,
            cache_capacity: 4096,
            warm_start: true,
            donor_capacity: 256,
        }
    }
}

/// Index of an admitted structure; row/column of the structure in every
/// snapshot taken after its admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub usize);

/// Errors reported by [`GramService::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramServiceError {
    /// The pending queue is full; flush (or drop submissions) before
    /// retrying.
    Backpressure {
        /// Submissions currently queued.
        pending: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The submitted structure has no vertices.
    EmptyStructure,
}

impl std::fmt::Display for GramServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GramServiceError::Backpressure { pending, capacity } => {
                write!(f, "pending queue full ({pending}/{capacity}); flush before resubmitting")
            }
            GramServiceError::EmptyStructure => {
                write!(f, "cannot admit a structure with no vertices")
            }
        }
    }
}

impl std::error::Error for GramServiceError {}

/// Cumulative counters of one service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Structures admitted (pending ones not yet included).
    pub admitted: usize,
    /// Pair solves actually executed (cache hits excluded).
    pub jobs_executed: usize,
    /// Pair entries served from the cache instead of solved.
    pub cache_hits: usize,
    /// Executed solves that started from a donated warm-start guess.
    pub warm_started: usize,
    /// Total PCG iterations across executed solves.
    pub total_iterations: usize,
    /// Executed solves that failed to converge (entries left `NaN`).
    pub failures: usize,
    /// Parallel batches scheduled.
    pub batches: usize,
    /// Admitted structures whose content hash equals an earlier admitted
    /// structure's while vertex or edge counts differ — an observed 64-bit
    /// content-hash collision. The widened [`PairKey`] keeps such pairs
    /// from aliasing cache entries; this counter makes the event (and thus
    /// the residual risk of a collision with *equal* counts) monitorable.
    pub hash_collisions: usize,
}

/// A materialized (dense, symmetric) view of the service's Gram matrix.
#[derive(Debug, Clone)]
pub struct GramSnapshot {
    /// Row-major `N × N` kernel matrix; entries of failed pairs are `NaN`.
    pub matrix: Vec<f32>,
    /// Number of admitted structures.
    pub num_graphs: usize,
}

impl GramSnapshot {
    /// Access entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.matrix[i * self.num_graphs + j]
    }
}

/// The raw ingredients of a [`GramSnapshot`]: the service's lower-triangle
/// values plus the normalization policy, captured *without* materializing
/// the dense matrix.
///
/// Capturing a source is a triangle copy (`N (N + 1) / 2` floats, no
/// solves, no mirroring, no normalization); [`build`](Self::build) performs
/// the O(n²) materialization. The background scheduler publishes sources
/// and lets the snapshot watch build on first demand, so flushes that
/// nobody observes never pay for a dense matrix.
#[derive(Debug, Clone)]
pub struct SnapshotSource {
    /// Lower-triangular raw kernel values, entry `(i, j)` with `j <= i` at
    /// `i (i + 1) / 2 + j`.
    triangle: Vec<f32>,
    /// Number of admitted structures.
    num_graphs: usize,
    /// Normalize to unit self-similarity on build.
    normalize: bool,
}

impl SnapshotSource {
    /// A source materializing an already-built matrix (test/bench helper
    /// for feeding a watch without a service).
    pub fn from_triangle(triangle: Vec<f32>, num_graphs: usize, normalize: bool) -> Self {
        assert_eq!(
            triangle.len(),
            num_graphs * (num_graphs + 1) / 2,
            "triangle length must match num_graphs"
        );
        SnapshotSource { triangle, num_graphs, normalize }
    }

    /// Number of admitted structures of the snapshot this source builds.
    pub fn num_graphs(&self) -> usize {
        self.num_graphs
    }

    /// Materialize the dense symmetric (optionally normalized) snapshot —
    /// the O(n²) step that lazy publication defers.
    pub fn build(&self) -> GramSnapshot {
        let n = self.num_graphs;
        let mut matrix = vec![f32::NAN; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.triangle[tri_index(i, j)];
                matrix[i * n + j] = v;
                matrix[j * n + i] = v;
            }
        }
        if self.normalize {
            let diag: Vec<f32> = (0..n).map(|i| matrix[i * n + i]).collect();
            for i in 0..n {
                for j in 0..n {
                    let d = (diag[i] * diag[j]).sqrt();
                    // a failed or degenerate diagonal poisons its whole
                    // row/column: mark those entries NaN rather than
                    // leaking raw-scale values into a normalized matrix
                    if d > 0.0 {
                        matrix[i * n + j] /= d;
                    } else {
                        matrix[i * n + j] = f32::NAN;
                    }
                }
            }
        }
        GramSnapshot { matrix, num_graphs: n }
    }
}

/// One admitted structure: the prepared graph plus its content identity.
#[derive(Debug, Clone)]
struct Member<V, E> {
    graph: Graph<V, E>,
    hash: u64,
    vertices: usize,
    edges: usize,
}

impl<V, E> Member<V, E> {
    /// The member's collision-hardened cache-key side.
    fn side(&self) -> PairSide {
        PairSide::new(self.hash, self.vertices as u32, self.edges as u32)
    }
}

/// One retained warm-start donor: the converged nodal solution plus the
/// iteration count of the solve that produced it (fewer iterations ⇒ the
/// solve started closer to the fixed point ⇒ the better donor).
#[derive(Debug, Clone)]
struct DonorEntry {
    nodal: Vec<f32>,
    iterations: usize,
}

/// Warm-start donors keyed by `(left structure hash, right vertex count)`,
/// bounded by evicting the least-recently-donated key.
///
/// Donation policy: a key that already holds a donor keeps the existing
/// vector when the incoming solve took *more* iterations — it converged
/// from a worse starting point, so the retained donor was closer to the
/// fixed point than the one it would be replaced by. Either way the key's
/// recency is refreshed (it is actively being donated to).
#[derive(Debug, Clone)]
struct DonorPool {
    capacity: usize,
    map: HashMap<(u64, usize), (u64, DonorEntry)>,
    recency: Recency<(u64, usize)>,
}

impl DonorPool {
    fn new(capacity: usize) -> Self {
        DonorPool { capacity: capacity.max(1), map: HashMap::new(), recency: Recency::new() }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// The donated guess for `key`, if any (read-only: batch workers share
    /// the pool immutably, so recency is donation-time only).
    fn get(&self, key: &(u64, usize)) -> Option<&[f32]> {
        self.map.get(key).map(|(_, e)| e.nodal.as_slice())
    }

    fn donate(&mut self, key: (u64, usize), nodal: Vec<f32>, iterations: usize) {
        if let Some((stamp, existing)) = self.map.get_mut(&key) {
            if iterations <= existing.iterations {
                *existing = DonorEntry { nodal, iterations };
            }
            *stamp = self.recency.touch(key);
        } else {
            if self.map.len() >= self.capacity {
                let map = &self.map;
                if let Some(victim) = self.recency.pop_lru(|k| map.get(k).map(|(t, _)| *t)) {
                    self.map.remove(&victim);
                }
            }
            let stamp = self.recency.touch(key);
            self.map.insert(key, (stamp, DonorEntry { nodal, iterations }));
        }
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
    }
}

/// The streaming Gram service. See the module docs for the design.
///
/// Cloning a service (all label and kernel types are `Clone`) snapshots its
/// full state — members, triangle, cache and donors — which benchmarks use
/// to replay an extension from the same warm starting point.
#[derive(Debug, Clone)]
pub struct GramService<KV, KE, V, E> {
    /// Applies the user's preprocessing (reordering, stopping-probability
    /// override) once per admitted structure, mirroring the Gram engine's
    /// reorder-once amortization.
    prep_solver: MarginalizedKernelSolver<KV, KE>,
    /// Solves prepared pairs; reordering disabled, nodal vectors retained
    /// for the warm-start donor pool.
    pair_solver: MarginalizedKernelSolver<KV, KE>,
    config: GramServiceConfig,
    members: Vec<Member<V, E>>,
    /// Lower-triangular raw kernel values: entry `(i, j)` with `j <= i`
    /// lives at `i (i + 1) / 2 + j`. Appending structures appends rows —
    /// existing entries never move.
    values: Vec<f32>,
    pending: VecDeque<Graph<V, E>>,
    cache: PairCache,
    /// Best converged nodal solution per `(left structure hash, right
    /// vertex count)`. Keying on the *left* structure means a donor shares
    /// the `A_i ⊗ ·` half of the Kronecker system with the pair it seeds,
    /// which keeps the guess close for ensembles of similar structures; the
    /// `pcg_counted_warm` residual guard discards it when it is not.
    donors: DonorPool,
    /// Content hasher for cache keys and donor keys; replaceable via
    /// [`with_content_hasher`](GramService::with_content_hasher).
    hasher: fn(&Graph<V, E>) -> u64,
    /// Discriminators `(vertices, edges)` of the first admitted structure
    /// per content hash, used to observe hash collisions.
    seen_hashes: HashMap<u64, (usize, usize)>,
    /// Monotone snapshot version: bumped by every flush that admits at
    /// least one structure.
    version: u64,
    stats: ServiceStats,
}

impl<KV, KE, V, E> GramService<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    /// Create a service around a per-pair solver.
    ///
    /// The solver's reordering and stopping-probability settings are
    /// applied once per structure at admission (the reorder-once
    /// amortization of the batch engine); its solve options govern every
    /// pair solve. A `max_pending` of 0 is treated as 1 — a queue that can
    /// never accept anything would make every submission path a silent
    /// no-op.
    pub fn new(solver: MarginalizedKernelSolver<KV, KE>, mut config: GramServiceConfig) -> Self {
        config.max_pending = config.max_pending.max(1);
        let pair_config = SolverConfig {
            reorder: ReorderMethod::Natural,
            stopping_probability: None,
            compute_nodal: true,
            ..*solver.config()
        };
        let pair_solver = solver.with_config(pair_config);
        GramService {
            prep_solver: solver,
            pair_solver,
            cache: PairCache::new(config.cache_capacity),
            donors: DonorPool::new(config.donor_capacity),
            config,
            members: Vec::new(),
            values: Vec::new(),
            pending: VecDeque::new(),
            hasher: graph_content_hash,
            seen_hashes: HashMap::new(),
            version: 0,
            stats: ServiceStats::default(),
        }
    }

    /// Replace the content hasher used for cache and donor keys.
    ///
    /// The default is [`graph_content_hash`]; a replacement must be set
    /// before the first structure is admitted (keys of already-admitted
    /// structures are not rehashed). Primarily useful for callers that want
    /// a stronger hash — and for tests that force collisions to exercise
    /// the widened [`PairKey`] discriminators.
    pub fn with_content_hasher(mut self, hasher: fn(&Graph<V, E>) -> u64) -> Self {
        debug_assert!(self.members.is_empty(), "set the hasher before admitting structures");
        self.hasher = hasher;
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &GramServiceConfig {
        &self.config
    }

    /// Number of admitted structures (the dimension of the next snapshot).
    pub fn num_structures(&self) -> usize {
        self.members.len()
    }

    /// Number of submitted-but-unprocessed structures.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Monotone snapshot version: bumped by every flush that admits at
    /// least one structure. The scheduler's watch epochs are exactly these
    /// versions.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cache hit/size observability for monitoring.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of retained warm-start donor vectors (bounded by
    /// [`GramServiceConfig::donor_capacity`]).
    pub fn donor_len(&self) -> usize {
        self.donors.len()
    }

    /// Queue a structure for admission.
    ///
    /// Returns the [`StructureId`] (snapshot row) it will occupy once
    /// flushed. Fails with [`GramServiceError::Backpressure`] when the
    /// pending queue is at [`GramServiceConfig::max_pending`] — the caller
    /// decides whether to flush, retry later or shed load.
    pub fn submit(&mut self, structure: Graph<V, E>) -> Result<StructureId, GramServiceError> {
        if structure.num_vertices() == 0 {
            return Err(GramServiceError::EmptyStructure);
        }
        if self.pending.len() >= self.config.max_pending {
            return Err(GramServiceError::Backpressure {
                pending: self.pending.len(),
                capacity: self.config.max_pending,
            });
        }
        let id = StructureId(self.members.len() + self.pending.len());
        self.pending.push_back(structure);
        Ok(id)
    }

    /// Submit every structure of an iterator, flushing whenever the queue
    /// fills (so backpressure throttles the producer instead of surfacing).
    /// Empty structures are skipped. Returns the ids assigned, in
    /// submission order.
    pub fn submit_all(
        &mut self,
        structures: impl IntoIterator<Item = Graph<V, E>>,
    ) -> Vec<StructureId> {
        let mut ids = Vec::new();
        for g in structures {
            if self.pending.len() >= self.config.max_pending {
                self.flush();
            }
            if let Ok(id) = self.submit(g) {
                ids.push(id);
            }
        }
        ids
    }

    /// Admit every pending structure and compute the new row/column blocks.
    ///
    /// Existing entries are not recomputed; new pairs are served from the
    /// content-hash cache where possible and otherwise scheduled in batches
    /// of [`GramServiceConfig::batch_size`] across the persistent worker
    /// pool. Returns the number of pair solves actually executed.
    pub fn flush(&mut self) -> usize {
        let first_new = self.members.len();
        if self.pending.is_empty() {
            return 0;
        }

        // admit: apply the per-structure preprocessing once, hash content
        let incoming: Vec<Graph<V, E>> = self.pending.drain(..).collect();
        let prepared: Vec<Graph<V, E>> = incoming
            .par_iter()
            .map(|g| self.prep_solver.prepare(g).unwrap_or_else(|| g.clone()))
            .collect();
        for g in prepared {
            let hash = (self.hasher)(&g);
            let vertices = g.num_vertices();
            let edges = g.num_edges();
            match self.seen_hashes.get(&hash) {
                Some(&(v, e)) if (v, e) != (vertices, edges) => {
                    // same 64-bit content hash, structurally different
                    // graph: the widened PairKey keeps the entries apart,
                    // but the event is worth counting
                    self.stats.hash_collisions += 1;
                }
                Some(_) => {}
                None => {
                    self.seen_hashes.insert(hash, (vertices, edges));
                }
            }
            self.members.push(Member { graph: g, hash, vertices, edges });
        }
        self.stats.admitted = self.members.len();
        self.version += 1;

        // the new lower-triangle block: rows [first_new, len), all j <= i.
        // Content-identical pairs *within* this flush (duplicate
        // submissions landing in one batch) are deduplicated up front:
        // one representative is solved, the rest resolve from the cache
        // afterwards.
        let new_len = self.members.len();
        self.values.resize(new_len * (new_len + 1) / 2, f32::NAN);
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        let mut scheduled: std::collections::HashSet<PairKey> = std::collections::HashSet::new();
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        for i in first_new..new_len {
            for j in 0..=i {
                let key = PairKey::new(self.members[i].side(), self.members[j].side());
                if let Some(entry) = self.cache.get(key) {
                    self.values[tri_index(i, j)] = entry.value;
                    self.stats.cache_hits += 1;
                } else if scheduled.insert(key) {
                    jobs.push((i, j));
                } else {
                    deferred.push((i, j));
                }
            }
        }

        // schedule the misses in bounded batches over the worker pool
        let mut executed = 0;
        for batch in jobs.chunks(self.config.batch_size.max(1)) {
            executed += batch.len();
            self.run_batch(batch);
        }

        // duplicates of a just-solved representative are cache lookups now
        // (a representative that failed to converge leaves its duplicates
        // NaN too — consistent with the entry it mirrors)
        for (i, j) in deferred {
            let key = PairKey::new(self.members[i].side(), self.members[j].side());
            if let Some(entry) = self.cache.get(key) {
                self.values[tri_index(i, j)] = entry.value;
                self.stats.cache_hits += 1;
            }
        }
        executed
    }

    /// Solve one batch of `(i, j)` pairs in parallel and fold the results
    /// into the triangle, the cache and the donor pool.
    fn run_batch(&mut self, batch: &[(usize, usize)]) {
        self.stats.batches += 1;
        // snapshot donors so every job in the batch sees a consistent pool
        let donors = &self.donors;
        let members = &self.members;
        let pair_solver = &self.pair_solver;
        let warm = self.config.warm_start;
        type JobOutcome = (usize, usize, bool, Result<KernelResult, SolverError>);
        let results: Vec<JobOutcome> = batch
            .par_iter()
            .map(|&(i, j)| {
                let guess =
                    if warm { donors.get(&(members[i].hash, members[j].vertices)) } else { None };
                let result =
                    pair_solver.kernel_with_guess(&members[i].graph, &members[j].graph, guess);
                (i, j, guess.is_some(), result)
            })
            .collect();

        for (i, j, warmed, result) in results {
            self.stats.jobs_executed += 1;
            let key = PairKey::new(self.members[i].side(), self.members[j].side());
            match result {
                Ok(r) => {
                    self.values[tri_index(i, j)] = r.value;
                    self.stats.total_iterations += r.iterations;
                    if warmed {
                        self.stats.warm_started += 1;
                    }
                    self.cache
                        .insert(key, CachedEntry { value: r.value, iterations: r.iterations });
                    if self.config.warm_start {
                        if let Some(nodal) = r.nodal {
                            let donor_key = (self.members[i].hash, self.members[j].vertices);
                            self.donors.donate(donor_key, nodal, r.iterations);
                        }
                    }
                }
                Err(_) => {
                    // leave the entry NaN and do not cache: a retry after
                    // resubmission gets a fresh chance to converge
                    self.stats.failures += 1;
                }
            }
        }
    }

    /// Materialize the current Gram matrix (flushing any pending
    /// submissions first).
    pub fn snapshot(&mut self) -> GramSnapshot {
        self.flush();
        self.snapshot_source().build()
    }

    /// Capture the ingredients of the current snapshot without building it
    /// — a triangle copy instead of the O(n²) materialization. Pending
    /// submissions are *not* flushed; the scheduler captures a source right
    /// after its flush, and the watch materializes it on first demand.
    pub fn snapshot_source(&self) -> SnapshotSource {
        SnapshotSource {
            triangle: self.values.clone(),
            num_graphs: self.members.len(),
            normalize: self.config.normalize,
        }
    }
}

/// Index of entry `(i, j)`, `j <= i`, in the growing lower triangle.
fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_core::{GramConfig, GramEngine};
    use mgk_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                if k % 2 == 0 {
                    generators::newman_watts_strogatz(12 + k % 5, 2, 0.2, &mut rng)
                } else {
                    generators::barabasi_albert(10 + k % 4, 2, &mut rng)
                }
            })
            .collect()
    }

    fn service(
        config: GramServiceConfig,
    ) -> GramService<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    > {
        GramService::new(MarginalizedKernelSolver::unlabeled(SolverConfig::default()), config)
    }

    #[test]
    fn incremental_extension_matches_fresh_batch_computation() {
        let graphs = dataset(10, 3);
        let (first, second) = graphs.split_at(6);

        let mut svc = service(GramServiceConfig::default());
        for g in first {
            svc.submit(g.clone()).unwrap();
        }
        let executed_first = svc.flush();
        assert_eq!(executed_first, 6 * 7 / 2);
        let jobs_after_first = svc.stats().jobs_executed;

        for g in second {
            svc.submit(g.clone()).unwrap();
        }
        let snapshot = svc.snapshot();

        // only the new row/column blocks were computed
        let total_pairs = 10 * 11 / 2;
        assert_eq!(svc.stats().jobs_executed, total_pairs);
        assert_eq!(svc.stats().jobs_executed - jobs_after_first, total_pairs - 6 * 7 / 2);

        // and the result agrees with a from-scratch batch computation
        let engine = GramEngine::new(
            MarginalizedKernelSolver::unlabeled(SolverConfig::default()),
            GramConfig::default(),
        );
        let batch = engine.compute(&graphs);
        assert_eq!(snapshot.num_graphs, batch.num_graphs);
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (snapshot.get(i, j), batch.get(i, j));
                assert!((a - b).abs() < 1e-4, "entry ({i},{j}): incremental {a} vs batch {b}");
            }
        }
    }

    #[test]
    fn resubmitted_structures_are_served_from_the_cache() {
        let graphs = dataset(4, 7);
        let mut svc = service(GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        let solved = svc.stats().jobs_executed;
        assert_eq!(solved, 4 * 5 / 2);

        // resubmit two structures verbatim: every new pair is content-equal
        // to an already-cached one, so no job runs
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[2].clone()).unwrap();
        let executed = svc.flush();
        assert_eq!(executed, 0, "cached entries must not be recomputed");
        assert_eq!(svc.stats().jobs_executed, solved);
        // rows 4 and 5 add 5 + 6 content-cached pairs
        assert!(svc.stats().cache_hits >= 11);

        // the duplicate row mirrors the original in the snapshot
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 6);
        for j in 0..6 {
            if j == 0 || j == 4 {
                continue; // self-similarity columns normalize to 1 anyway
            }
            let (orig, dup) = (snap.get(0, j), snap.get(4, j));
            assert!((orig - dup).abs() < 1e-6, "row 4 should mirror row 0 at column {j}");
        }
    }

    #[test]
    fn backpressure_bounds_the_pending_queue() {
        let graphs = dataset(3, 11);
        let mut svc = service(GramServiceConfig { max_pending: 2, ..Default::default() });
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[1].clone()).unwrap();
        match svc.submit(graphs[2].clone()) {
            Err(GramServiceError::Backpressure { pending: 2, capacity: 2 }) => {}
            other => panic!("expected backpressure, got {other:?}"),
        }
        svc.flush();
        svc.submit(graphs[2].clone()).unwrap();
        assert_eq!(svc.num_pending(), 1);
    }

    #[test]
    fn empty_structures_are_rejected() {
        let mut svc = service(GramServiceConfig::default());
        let empty: Graph = Graph::from_edge_list(0, &[]);
        assert_eq!(svc.submit(empty), Err(GramServiceError::EmptyStructure));
    }

    #[test]
    fn warm_starts_occur_and_do_not_change_values() {
        // same-sized graphs so every solve after the first has a donor
        let mut rng = StdRng::seed_from_u64(23);
        let graphs: Vec<Graph> =
            (0..6).map(|_| generators::newman_watts_strogatz(16, 2, 0.15, &mut rng)).collect();

        // small batches: donors are snapshotted per batch, so warm starts
        // only kick in from the second batch of a flush onward
        let mut warm_svc = service(GramServiceConfig { batch_size: 4, ..Default::default() });
        let mut cold_svc =
            service(GramServiceConfig { warm_start: false, batch_size: 4, ..Default::default() });
        for g in &graphs {
            warm_svc.submit(g.clone()).unwrap();
            cold_svc.submit(g.clone()).unwrap();
        }
        let warm_snap = warm_svc.snapshot();
        let cold_snap = cold_svc.snapshot();

        assert!(warm_svc.stats().warm_started > 0, "no solve used a warm start");
        assert_eq!(cold_svc.stats().warm_started, 0);
        for (a, b) in warm_snap.matrix.iter().zip(&cold_snap.matrix) {
            assert!((a - b).abs() < 1e-4, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn warm_starts_cut_iterations_on_similar_structures() {
        // the realistic streaming case: variants of one structure (same
        // topology, slightly different random-walk parameters) arrive over
        // time — donors are nearly exact and the residual guard never has
        // to discard them
        let mut rng = StdRng::seed_from_u64(29);
        let base = generators::newman_watts_strogatz(16, 2, 0.15, &mut rng);
        let variants: Vec<Graph> = (0..8)
            .map(|k| base.clone().with_uniform_stopping_probability(0.05 + 1e-4 * k as f32))
            .collect();

        let run = |warm_start: bool| {
            let mut svc =
                service(GramServiceConfig { warm_start, batch_size: 4, ..Default::default() });
            for g in &variants {
                svc.submit(g.clone()).unwrap();
            }
            let snap = svc.snapshot();
            (svc.stats(), snap)
        };
        let (warm_stats, warm_snap) = run(true);
        let (cold_stats, cold_snap) = run(false);

        assert!(warm_stats.warm_started > 0);
        assert!(
            warm_stats.total_iterations < cold_stats.total_iterations,
            "warm starts should cut iterations on near-identical systems: warm {} vs cold {}",
            warm_stats.total_iterations,
            cold_stats.total_iterations
        );
        for (a, b) in warm_snap.matrix.iter().zip(&cold_snap.matrix) {
            assert!((a - b).abs() < 1e-4, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn snapshot_is_symmetric_normalized_and_psd_like() {
        let graphs = dataset(5, 19);
        let mut svc = service(GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 5);
        for i in 0..5 {
            assert!((snap.get(i, i) - 1.0).abs() < 1e-5);
            for j in 0..5 {
                assert_eq!(snap.get(i, j), snap.get(j, i));
                assert!(snap.get(i, j) > 0.0 && snap.get(i, j) <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn duplicates_within_one_flush_are_solved_once() {
        let graphs = dataset(3, 53);
        let mut svc = service(GramServiceConfig::default());
        // submit each structure twice before the first flush: every
        // content-duplicate pair must resolve from the representative's
        // cache entry, not a second solve
        for g in graphs.iter().chain(graphs.iter()) {
            svc.submit(g.clone()).unwrap();
        }
        let executed = svc.flush();
        assert_eq!(executed, 3 * 4 / 2, "only unique content pairs are solved");
        let snap = svc.snapshot();
        assert_eq!(snap.num_graphs, 6);
        assert!(snap.matrix.iter().all(|v| v.is_finite()));
        // rows of a duplicate mirror the original
        for j in 0..6 {
            assert!((snap.get(1, j) - snap.get(4, j)).abs() < 1e-6, "column {j}");
        }
    }

    #[test]
    fn zero_max_pending_is_clamped_to_one() {
        let graphs = dataset(1, 59);
        let mut svc = service(GramServiceConfig { max_pending: 0, ..Default::default() });
        svc.submit(graphs[0].clone()).expect("a zero queue bound must not reject everything");
        assert_eq!(svc.snapshot().num_graphs, 1);
        let ids = svc.submit_all(graphs.clone());
        assert_eq!(ids.len(), 1, "submit_all must not silently drop structures");
    }

    #[test]
    fn donor_pool_is_bounded() {
        let graphs = dataset(6, 61);
        let mut svc =
            service(GramServiceConfig { donor_capacity: 3, batch_size: 2, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert!(svc.donor_len() <= 3, "donor pool exceeded its bound: {}", svc.donor_len());
    }

    #[test]
    fn failed_solves_leave_nan_entries_not_raw_values() {
        let graphs = dataset(3, 67);
        // a 1-iteration budget at an unreachable tolerance: every solve fails
        let solver = MarginalizedKernelSolver::unlabeled(SolverConfig {
            solve: mgk_linalg::SolveOptions { max_iterations: 1, tolerance: 1e-30 },
            ..SolverConfig::default()
        });
        let mut svc = GramService::new(solver, GramServiceConfig::default());
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let snap = svc.snapshot();
        assert_eq!(svc.stats().failures, 3 * 4 / 2);
        assert!(
            snap.matrix.iter().all(|v| v.is_nan()),
            "failed entries must be NaN-marked, never raw-scale values"
        );
    }

    #[test]
    fn cache_capacity_bounds_memory() {
        let graphs = dataset(6, 31);
        let mut svc = service(GramServiceConfig { cache_capacity: 5, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        svc.flush();
        assert!(svc.cache_len() <= 5);
    }

    #[test]
    fn forced_hash_collision_cannot_serve_a_wrong_kernel_value() {
        // every structure hashes to the same 64-bit value: before the
        // PairKey widening, the second distinct graph's pairs would be
        // served from the first one's cache entries
        let collide: fn(&Graph) -> u64 = |_| 0xDEAD_BEEF;
        let path = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let cycle = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);

        let mut svc = service(GramServiceConfig::default()).with_content_hasher(collide);
        svc.submit(path.clone()).unwrap();
        svc.submit(cycle.clone()).unwrap();
        let snap = svc.snapshot();

        // the collision was observed …
        assert!(svc.stats().hash_collisions >= 1, "collision went unobserved");
        // … and despite it, all three distinct pairs were solved, none
        // aliased to another's cache entry
        assert_eq!(svc.stats().jobs_executed, 3);
        assert_eq!(svc.stats().cache_hits, 0);

        // values agree with an un-collided reference service
        let mut reference = service(GramServiceConfig::default());
        reference.submit(path).unwrap();
        reference.submit(cycle).unwrap();
        let expected = reference.snapshot();
        for i in 0..2 {
            for j in 0..2 {
                let (a, b) = (snap.get(i, j), expected.get(i, j));
                assert!((a - b).abs() < 1e-5, "entry ({i},{j}): collided {a} vs reference {b}");
            }
        }
        assert!(
            (snap.get(0, 1) - 1.0).abs() > 1e-3,
            "off-diagonal must not alias the self-similarity entry"
        );
    }

    #[test]
    fn version_bumps_once_per_admitting_flush() {
        let graphs = dataset(4, 71);
        let mut svc = service(GramServiceConfig::default());
        assert_eq!(svc.version(), 0);
        svc.flush();
        assert_eq!(svc.version(), 0, "an empty flush must not bump the version");
        svc.submit(graphs[0].clone()).unwrap();
        svc.submit(graphs[1].clone()).unwrap();
        svc.flush();
        assert_eq!(svc.version(), 1);
        svc.flush();
        assert_eq!(svc.version(), 1);
        svc.submit(graphs[2].clone()).unwrap();
        svc.snapshot();
        assert_eq!(svc.version(), 2);
    }

    #[test]
    fn donor_pool_keeps_the_better_donor_and_evicts_lru() {
        let mut pool = DonorPool::new(2);
        pool.donate((1, 10), vec![1.0], 5);
        pool.donate((2, 10), vec![2.0], 5);

        // an incoming solve that took MORE iterations converged from a
        // worse start: the retained donor stays
        pool.donate((1, 10), vec![1.5], 9);
        assert_eq!(pool.get(&(1, 10)), Some(&[1.0][..]));
        // fewer (or equal) iterations: replace
        pool.donate((1, 10), vec![1.9], 3);
        assert_eq!(pool.get(&(1, 10)), Some(&[1.9][..]));

        // (1,10) was just donated to; (2,10) is the least-recently-donated
        // key and must be the eviction victim — not an arbitrary one
        pool.donate((3, 10), vec![3.0], 5);
        assert_eq!(pool.len(), 2);
        assert!(pool.get(&(2, 10)).is_none(), "LRU donor should have been evicted");
        assert!(pool.get(&(1, 10)).is_some());
        assert!(pool.get(&(3, 10)).is_some());
    }

    #[test]
    fn donor_recency_is_refreshed_even_when_the_old_donor_is_kept() {
        let mut pool = DonorPool::new(2);
        pool.donate((1, 10), vec![1.0], 3);
        pool.donate((2, 10), vec![2.0], 5);
        // key 1 is re-donated with a worse solve: vector kept, recency
        // refreshed — so key 2 is now the LRU victim
        pool.donate((1, 10), vec![1.1], 8);
        pool.donate((3, 10), vec![3.0], 4);
        assert!(pool.get(&(1, 10)).is_some());
        assert!(pool.get(&(2, 10)).is_none());
    }

    #[test]
    fn batched_scheduling_covers_all_jobs() {
        let graphs = dataset(7, 43);
        let mut svc = service(GramServiceConfig { batch_size: 3, ..Default::default() });
        for g in &graphs {
            svc.submit(g.clone()).unwrap();
        }
        let executed = svc.flush();
        assert_eq!(executed, 7 * 8 / 2);
        assert_eq!(svc.stats().batches, (7usize * 8 / 2).div_ceil(3));
        let snap = svc.snapshot();
        assert!(snap.matrix.iter().all(|v| v.is_finite()));
    }
}
