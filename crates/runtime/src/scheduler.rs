//! The background Gram scheduler: producers submit structures in
//! microseconds, solves run on a dedicated thread.
//!
//! [`GramService::flush`] runs on the caller's thread, so a synchronous
//! producer stalls for the full PCG solve latency of its batch. The
//! [`GramScheduler`] decouples the two sides, the serving analogue of the
//! paper's batched job queue:
//!
//! * The scheduler **owns the service on a background thread** and drains
//!   its queue continuously: commands arriving while a flush is in progress
//!   coalesce into the next batch, so the solve pipeline stays saturated
//!   with pair jobs while producers run ahead.
//! * Producers hold a cheap, cloneable [`GramClient`] over a **bounded
//!   command channel**. [`submit`](GramClient::submit) blocks only when the
//!   channel is full (backpressure as flow control) and
//!   [`try_submit`](GramClient::try_submit) surfaces
//!   [`SchedulerError::Backpressure`] instead — a blocking-or-try choice at
//!   the channel, not an error the caller must retry around.
//! * Consumers hold a [`SnapshotWatch`]: every completed flush publishes
//!   the new snapshot under a bumped epoch (the service's
//!   [`version`](GramService::version)), `wait_newer` blocks until a
//!   fresher snapshot exists, and the per-epoch snapshot is cached so idle
//!   polls cost an `Arc` clone instead of an O(n²) rebuild.
//! * [`flush`](GramClient::flush) is a **barrier**: it returns once every
//!   submission enqueued before it has been admitted and solved.
//! * [`join`](GramScheduler::join) performs a **graceful shutdown** —
//!   outstanding submissions are drained and solved first — and returns the
//!   service for inspection. A panic on the scheduler thread (a poisoned
//!   solve) closes the watch, unblocks every waiting consumer, and is
//!   re-raised from `join`.
//!
//! Batches are fanned out over the existing persistent worker
//! [`Pool`](crate::Pool) — the scheduler thread is a coordinator, not a
//! compute thread.

use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

use mgk_graph::Graph;
use mgk_kernels::BaseKernel;

use crate::hash::ContentHash;
use crate::service::{GramService, GramServiceError};
use crate::watch::{snapshot_channel, SnapshotPublisher, SnapshotWatch};

/// Configuration of a [`GramScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Capacity of the bounded command channel between producers and the
    /// scheduler thread. A full channel blocks [`GramClient::submit`] and
    /// fails [`GramClient::try_submit`] with backpressure.
    pub channel_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { channel_capacity: 1024 }
    }
}

/// Errors reported by [`GramClient`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerError {
    /// The submitted structure has no vertices.
    EmptyStructure,
    /// The command channel is full ([`GramClient::try_submit`] only);
    /// block in [`GramClient::submit`] instead, or shed load.
    Backpressure {
        /// The configured channel capacity.
        capacity: usize,
    },
    /// The scheduler thread is gone (shut down or panicked).
    Closed,
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::EmptyStructure => {
                write!(f, "cannot admit a structure with no vertices")
            }
            SchedulerError::Backpressure { capacity } => {
                write!(f, "command channel full (capacity {capacity}); block or shed load")
            }
            SchedulerError::Closed => write!(f, "scheduler is shut down"),
        }
    }
}

impl std::error::Error for SchedulerError {}

/// Reply of a [`GramClient::flush`] barrier: the scheduler's state after
/// every previously enqueued submission was admitted and solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierReply {
    /// The snapshot epoch after the barrier's flush.
    pub epoch: u64,
    /// Structures admitted so far.
    pub num_structures: usize,
}

enum Command<V, E> {
    Submit(Graph<V, E>),
    SubmitAll(Vec<Graph<V, E>>),
    Barrier(mpsc::Sender<BarrierReply>),
    Shutdown,
}

/// Cheap, cloneable producer/consumer handle to a running
/// [`GramScheduler`].
#[derive(Debug)]
pub struct GramClient<V, E> {
    tx: SyncSender<Command<V, E>>,
    watch: SnapshotWatch,
    capacity: usize,
}

impl<V, E> Clone for GramClient<V, E> {
    fn clone(&self) -> Self {
        GramClient { tx: self.tx.clone(), watch: self.watch.clone(), capacity: self.capacity }
    }
}

impl<V, E> GramClient<V, E> {
    /// Enqueue a structure, blocking while the command channel is full.
    ///
    /// Returns in microseconds under normal load — the solve happens on the
    /// scheduler thread. Blocking on a full channel is the flow-control
    /// path: a producer outrunning the solver is throttled to its pace.
    pub fn submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.tx.send(Command::Submit(structure)).map_err(|_| SchedulerError::Closed)
    }

    /// Enqueue a structure without blocking; a full channel reports
    /// [`SchedulerError::Backpressure`] so the producer can shed load.
    pub fn try_submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.tx.try_send(Command::Submit(structure)).map_err(|e| match e {
            TrySendError::Full(_) => SchedulerError::Backpressure { capacity: self.capacity },
            TrySendError::Disconnected(_) => SchedulerError::Closed,
        })
    }

    /// Enqueue a whole collection as one command (empty structures are
    /// skipped). Returns the number of structures enqueued.
    pub fn submit_all(
        &self,
        structures: impl IntoIterator<Item = Graph<V, E>>,
    ) -> Result<usize, SchedulerError> {
        let batch: Vec<Graph<V, E>> =
            structures.into_iter().filter(|g| g.num_vertices() > 0).collect();
        let n = batch.len();
        if n == 0 {
            return Ok(0);
        }
        self.tx.send(Command::SubmitAll(batch)).map_err(|_| SchedulerError::Closed)?;
        Ok(n)
    }

    /// Barrier: block until every submission enqueued before this call has
    /// been admitted and solved, and report the resulting epoch.
    pub fn flush(&self) -> Result<BarrierReply, SchedulerError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx.send(Command::Barrier(reply_tx)).map_err(|_| SchedulerError::Closed)?;
        reply_rx.recv().map_err(|_| SchedulerError::Closed)
    }

    /// The versioned snapshot watch fed by this scheduler.
    pub fn watch(&self) -> SnapshotWatch {
        self.watch.clone()
    }
}

/// A [`GramService`] running on a dedicated background thread. See the
/// module docs for the design.
#[derive(Debug)]
pub struct GramScheduler<KV, KE, V, E> {
    client: GramClient<V, E>,
    handle: JoinHandle<GramService<KV, KE, V, E>>,
}

impl<KV, KE, V, E> GramScheduler<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash + 'static,
    E: Copy + Default + Send + Sync + ContentHash + 'static,
    KV: BaseKernel<V> + Clone + Send + Sync + 'static,
    KE: BaseKernel<E> + Clone + Send + Sync + 'static,
{
    /// Move `service` onto a background scheduler thread.
    ///
    /// A pre-warmed service (structures admitted before the handoff) has
    /// its current snapshot published immediately, so watchers see the warm
    /// state without waiting for the first submission; submissions still
    /// pending inside the service are flushed first.
    pub fn spawn(service: GramService<KV, KE, V, E>, config: SchedulerConfig) -> Self {
        let capacity = config.channel_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel(capacity);
        let (publisher, watch) = snapshot_channel();
        let handle = std::thread::Builder::new()
            .name("mgk-gram-scheduler".to_string())
            .spawn(move || {
                // `publisher` lives on this frame: whether `run` returns or
                // unwinds on a solve panic, dropping it closes the watch and
                // unblocks every waiting consumer
                run(rx, capacity, service, &publisher)
            })
            .expect("spawning the scheduler thread");
        GramScheduler { client: GramClient { tx, watch, capacity }, handle }
    }

    /// A new producer/consumer handle (cheap; clone freely across threads).
    pub fn client(&self) -> GramClient<V, E> {
        self.client.clone()
    }

    /// The versioned snapshot watch fed by this scheduler.
    pub fn watch(&self) -> SnapshotWatch {
        self.client.watch.clone()
    }

    /// Gracefully shut down: every submission already enqueued is drained
    /// and solved, the final snapshot is published, and the service is
    /// returned for inspection. If the scheduler thread panicked, the panic
    /// is re-raised here.
    pub fn join(self) -> GramService<KV, KE, V, E> {
        // best-effort: the thread may already be gone (e.g. after a panic),
        // in which case the join below reports it
        let _ = self.client.tx.send(Command::Shutdown);
        drop(self.client);
        match self.handle.join() {
            Ok(service) => service,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// The scheduler thread body: receive, coalesce, flush, publish, repeat.
fn run<KV, KE, V, E>(
    rx: Receiver<Command<V, E>>,
    capacity: usize,
    mut service: GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
) -> GramService<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    // hand-off state: flush anything already pending, publish warm state
    if service.num_pending() > 0 {
        flush_and_publish(&mut service, publisher);
    } else if service.num_structures() > 0 {
        publish(&mut service, publisher);
    }

    loop {
        let first = match rx.recv() {
            Ok(cmd) => cmd,
            // every client is gone: nothing more can arrive
            Err(_) => break,
        };
        // coalesce whatever has queued up behind the first command into one
        // batch — under load, many submissions amortize into one flush. The
        // drain is capped at one channel's worth per batch: producers
        // refilling the channel as fast as we drain it must not postpone
        // the flush (and any barrier) indefinitely
        let mut commands = vec![first];
        while commands.len() <= capacity {
            match rx.try_recv() {
                Ok(cmd) => commands.push(cmd),
                Err(_) => break,
            }
        }

        let mut shutdown = false;
        let mut barriers: Vec<mpsc::Sender<BarrierReply>> = Vec::new();
        for command in commands {
            match command {
                Command::Submit(g) => admit(&mut service, publisher, g),
                Command::SubmitAll(gs) => {
                    for g in gs {
                        admit(&mut service, publisher, g);
                    }
                }
                Command::Barrier(reply) => barriers.push(reply),
                Command::Shutdown => shutdown = true,
            }
        }

        if service.num_pending() > 0 {
            flush_and_publish(&mut service, publisher);
        }
        for barrier in barriers {
            // a client that gave up waiting is not an error
            let _ = barrier.send(BarrierReply {
                epoch: service.version(),
                num_structures: service.num_structures(),
            });
        }
        if shutdown {
            // commands a racing producer enqueued *after* the shutdown are
            // dropped with the receiver; everything before it was drained
            break;
        }
    }
    service
}

/// Queue one structure into the service, flushing mid-batch if the
/// service's own pending bound fills up first.
fn admit<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
    g: Graph<V, E>,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    if service.num_pending() >= service.config().max_pending {
        // the service queue is smaller than the coalesced batch: flush what
        // is pending (publishing the intermediate epoch) so the submission
        // below cannot hit backpressure
        flush_and_publish(service, publisher);
    }
    match service.submit(g) {
        Ok(_) => {}
        Err(GramServiceError::Backpressure { .. }) => {
            debug_assert!(false, "queue was flushed; backpressure is impossible here");
        }
        // the client already rejects empty structures; dropping a stray one
        // mirrors GramService::submit_all
        Err(GramServiceError::EmptyStructure) => {}
    }
}

/// Flush the service and publish the fresh snapshot under its new version.
fn flush_and_publish<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    service.flush();
    publish(service, publisher);
}

/// Publish the service's current snapshot *source* at its current version.
///
/// Publication is lazy: only the raw triangle is captured here. The dense
/// O(n²) snapshot is materialized by the watch on the first
/// `wait_newer`/`latest` that observes the epoch, so flushes nobody
/// watches never build a matrix (see `SnapshotWatch::snapshot_builds`).
fn publish<KV, KE, V, E>(service: &mut GramService<KV, KE, V, E>, publisher: &SnapshotPublisher)
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    publisher.publish(service.version(), service.snapshot_source());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::graph_content_hash;
    use crate::service::GramServiceConfig;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    type UnlabeledScheduler = GramScheduler<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    >;

    fn dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|k| generators::newman_watts_strogatz(10 + k % 4, 2, 0.2, &mut rng)).collect()
    }

    fn service(
        config: GramServiceConfig,
    ) -> GramService<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    > {
        GramService::new(MarginalizedKernelSolver::unlabeled(SolverConfig::default()), config)
    }

    fn spawn_default() -> UnlabeledScheduler {
        GramScheduler::spawn(service(GramServiceConfig::default()), SchedulerConfig::default())
    }

    #[test]
    fn submissions_flow_through_the_background_thread() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let graphs = dataset(3, 5);
        for g in &graphs {
            client.submit(g.clone()).unwrap();
        }
        let reply = client.flush().unwrap();
        assert_eq!(reply.num_structures, 3);
        assert!(reply.epoch >= 1);

        // the barrier guarantees the snapshot is published
        let latest = scheduler.watch().latest().expect("snapshot published after the barrier");
        assert_eq!(latest.snapshot.num_graphs, 3);
        assert!(latest.snapshot.matrix.iter().all(|v| v.is_finite()));

        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 3);
        assert_eq!(svc.stats().jobs_executed, 3 * 4 / 2);
    }

    #[test]
    fn join_drains_outstanding_submissions() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let graphs = dataset(5, 11);
        let n = client.submit_all(graphs).unwrap();
        assert_eq!(n, 5);
        // no barrier: join itself must drain and solve everything enqueued
        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 5);
        assert_eq!(svc.stats().jobs_executed, 5 * 6 / 2);
        assert_eq!(svc.num_pending(), 0);
    }

    #[test]
    fn a_panicking_solve_propagates_to_join_and_closes_the_watch() {
        let panicking: fn(&Graph) -> u64 = |_| panic!("forced solve-path panic");
        let svc = service(GramServiceConfig::default()).with_content_hasher(panicking);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let client = scheduler.client();
        let watch = scheduler.watch();

        client.submit(dataset(1, 13).pop().unwrap()).unwrap();
        // the thread dies flushing; consumers must be unblocked, not hung
        assert_eq!(watch.wait_newer(0).unwrap_err(), crate::watch::WatchClosed);
        let propagated = catch_unwind(AssertUnwindSafe(move || scheduler.join()));
        assert!(propagated.is_err(), "the scheduler panic was swallowed");
        // post-mortem clients observe closure, not deadlock
        assert_eq!(client.flush(), Err(SchedulerError::Closed));
    }

    #[test]
    fn wait_newer_wakes_exactly_once_per_epoch() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let watch = scheduler.watch();
        let graphs = dataset(2, 17);

        client.submit(graphs[0].clone()).unwrap();
        let first_epoch = client.flush().unwrap().epoch;
        let v1 = watch.wait_newer(0).unwrap();
        assert_eq!(v1.epoch, first_epoch);
        assert_eq!(v1.snapshot.num_graphs, 1);

        client.submit(graphs[1].clone()).unwrap();
        let second_epoch = client.flush().unwrap().epoch;
        assert_eq!(second_epoch, first_epoch + 1, "one epoch per completed flush");
        let v2 = watch.wait_newer(v1.epoch).unwrap();
        assert_eq!(v2.epoch, second_epoch);
        assert_eq!(v2.snapshot.num_graphs, 2);

        scheduler.join();
        // nothing newer ever arrives: the consumer is woken for closure,
        // not handed a stale epoch twice
        assert_eq!(watch.wait_newer(v2.epoch).unwrap_err(), crate::watch::WatchClosed);
    }

    // Gate shared with `gated_hash` so the backpressure test can hold the
    // scheduler thread inside a flush deterministically.
    static GATE: Mutex<()> = Mutex::new(());

    fn gated_hash(g: &Graph) -> u64 {
        let _held = GATE.lock().unwrap();
        graph_content_hash(g)
    }

    #[test]
    fn try_submit_reports_backpressure_when_the_channel_fills() {
        let gate = GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig { channel_capacity: 1 });
        let client = scheduler.client();
        let g = dataset(1, 19).pop().unwrap();

        // the scheduler picks up early submissions and then blocks on the
        // gate inside its flush; with a 1-slot channel the producer sees
        // backpressure after at most a handful of accepted submissions
        client.submit(g.clone()).unwrap();
        let mut accepted = 1;
        let mut saw_backpressure = false;
        for _ in 0..200 {
            match client.try_submit(g.clone()) {
                Ok(()) => accepted += 1,
                Err(SchedulerError::Backpressure { capacity: 1 }) => {
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(saw_backpressure, "a full 1-slot channel must report backpressure");

        // release the solver; every accepted submission must be admitted
        drop(gate);
        let reply = client.flush().unwrap();
        assert_eq!(reply.num_structures, accepted);
        scheduler.join();
    }

    #[test]
    fn empty_structures_are_rejected_client_side() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let empty: Graph = Graph::from_edge_list(0, &[]);
        assert_eq!(client.submit(empty.clone()), Err(SchedulerError::EmptyStructure));
        assert_eq!(client.try_submit(empty.clone()), Err(SchedulerError::EmptyStructure));
        assert_eq!(client.submit_all(vec![empty]), Ok(0));
        assert_eq!(client.flush().unwrap().num_structures, 0);
        scheduler.join();
    }

    #[test]
    fn a_prewarmed_service_publishes_its_snapshot_on_spawn() {
        let mut svc = service(GramServiceConfig::default());
        for g in dataset(3, 23) {
            svc.submit(g).unwrap();
        }
        svc.flush();
        let warm_version = svc.version();

        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let v = scheduler.watch().wait_newer(0).unwrap();
        assert_eq!(v.epoch, warm_version);
        assert_eq!(v.snapshot.num_graphs, 3);
        scheduler.join();
    }

    #[test]
    fn unwatched_epochs_do_not_build_snapshots() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let watch = scheduler.watch();
        let graphs = dataset(4, 31);

        // three admitting flushes, no consumer looking: the solves run and
        // the epochs advance, but no O(n²) snapshot is ever materialized
        let mut last_epoch = 0;
        for g in &graphs[..3] {
            client.submit(g.clone()).unwrap();
            last_epoch = client.flush().unwrap().epoch;
        }
        assert!(last_epoch >= 3);
        assert_eq!(watch.snapshot_builds(), 0, "unwatched epochs must not build snapshots");

        // the first observation builds exactly one snapshot — of the
        // newest epoch only, the skipped ones stay unbuilt forever
        let v = watch.wait_newer(0).unwrap();
        assert_eq!(v.epoch, last_epoch);
        assert_eq!(v.snapshot.num_graphs, 3);
        assert_eq!(watch.snapshot_builds(), 1);
        // repeat polls reuse the cached build
        assert_eq!(watch.latest().unwrap().epoch, last_epoch);
        assert_eq!(watch.snapshot_builds(), 1);
        scheduler.join();
    }

    #[test]
    fn coalesced_batches_exceeding_the_service_queue_are_split_not_lost() {
        // service queue of 2, one coalesced wave of 6: the scheduler must
        // flush mid-batch instead of dropping submissions
        let svc = service(GramServiceConfig { max_pending: 2, ..Default::default() });
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let client = scheduler.client();
        client.submit_all(dataset(6, 29)).unwrap();
        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 6, "mid-batch flushes must not lose structures");
    }
}
