//! The background Gram scheduler: producers submit structures in
//! microseconds, solves run on a dedicated thread.
//!
//! [`GramService::flush`] runs on the caller's thread, so a synchronous
//! producer stalls for the full PCG solve latency of its batch. The
//! [`GramScheduler`] decouples the two sides, the serving analogue of the
//! paper's batched job queue:
//!
//! * The scheduler **owns the service on a background thread** and drains
//!   its queue continuously: commands arriving while a flush is in progress
//!   coalesce into the next batch, so the solve pipeline stays saturated
//!   with pair jobs while producers run ahead.
//! * Producers hold a cheap, cloneable [`GramClient`] over a **bounded
//!   command channel**. [`submit`](GramClient::submit) blocks only when the
//!   channel is full (backpressure as flow control) and
//!   [`try_submit`](GramClient::try_submit) surfaces
//!   [`SchedulerError::Backpressure`] instead — a blocking-or-try choice at
//!   the channel, not an error the caller must retry around.
//! * Consumers hold a [`SnapshotWatch`]: every completed flush publishes
//!   the new snapshot under a bumped epoch (the service's
//!   [`version`](GramService::version)), `wait_newer` blocks until a
//!   fresher snapshot exists, and the per-epoch snapshot is cached so idle
//!   polls cost an `Arc` clone instead of an O(n²) rebuild.
//! * [`flush`](GramClient::flush) is a **barrier**: it returns once every
//!   submission enqueued before it has been admitted and solved.
//! * [`join`](GramScheduler::join) performs a **graceful shutdown** —
//!   outstanding submissions are drained and solved first — and returns the
//!   service for inspection. A panic on the scheduler thread (a poisoned
//!   solve) closes the watch, unblocks every waiting consumer, and is
//!   re-raised from `join`.
//!
//! Batches are fanned out over the existing persistent worker
//! [`Pool`](crate::Pool) — the scheduler thread is a coordinator, not a
//! compute thread.

use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mgk_core::{KernelResult, StageBreakdown};
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_linalg::{Precision, Scalar, TrafficCounters};
use mgk_telemetry::{Histogram, MetricsRegistry, Stopwatch};
use rayon::prelude::*;

use crate::cache::{CachedEntry, PairKey, PairSide};
use crate::hash::ContentHash;
use crate::metrics::RuntimeMetrics;
use crate::service::{GramService, GramServiceError, PreparedPair, RequestSolve};
use crate::ticket::{ticket, RequestError, Ticket, TicketResolver};
use crate::watch::{snapshot_channel_counted, SnapshotPublisher, SnapshotWatch};

/// Configuration of a [`GramScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Capacity of the bounded command channel between producers and the
    /// scheduler thread. A full channel blocks [`GramClient::submit`] and
    /// fails [`GramClient::try_submit`] with backpressure.
    pub channel_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { channel_capacity: 1024 }
    }
}

/// Errors reported by [`GramClient`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerError {
    /// The submitted structure has no vertices.
    EmptyStructure,
    /// The command channel is full ([`GramClient::try_submit`] only);
    /// block in [`GramClient::submit`] instead, or shed load.
    Backpressure {
        /// The configured channel capacity.
        capacity: usize,
    },
    /// The scheduler thread is gone (shut down or panicked).
    Closed,
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::EmptyStructure => {
                write!(f, "cannot admit a structure with no vertices")
            }
            SchedulerError::Backpressure { capacity } => {
                write!(f, "command channel full (capacity {capacity}); block or shed load")
            }
            SchedulerError::Closed => write!(f, "scheduler is shut down"),
        }
    }
}

impl std::error::Error for SchedulerError {}

/// Reply of a [`GramClient::flush`] barrier: the scheduler's state after
/// every previously enqueued submission was admitted and solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierReply {
    /// The snapshot epoch after the barrier's flush.
    pub epoch: u64,
    /// Structures admitted so far.
    pub num_structures: usize,
}

enum Command<V, E> {
    Submit(Graph<V, E>),
    SubmitAll(Vec<Graph<V, E>>),
    Barrier(mpsc::Sender<BarrierReply>),
    // boxed: a request (two graphs + resolver + deadline) is several times
    // a Submit, and the channel moves Commands by value
    Request(Box<KernelRequest<V, E>>),
    Shutdown,
}

/// One request-lane command: a pair to evaluate, an optional deadline, and
/// the typed resolver its answer goes to. The intake stopwatch starts in
/// the client's enqueue call, so queue wait and end-to-end latency are
/// measured from the producer's perspective, channel time included.
struct KernelRequest<V, E> {
    left: Graph<V, E>,
    right: Graph<V, E>,
    deadline: Option<Instant>,
    resolver: KernelResolver,
    intake: Stopwatch,
}

/// A typed ticket resolver routed through the scheduler's untyped command
/// stream. Internal plumbing of the request lane — constructed by
/// [`RequestScalar::wrap_resolver`], consumed by the scheduler thread.
#[doc(hidden)]
#[derive(Debug)]
pub enum KernelResolver {
    F32(TicketResolver<KernelResult<f32>>),
    F64(TicketResolver<KernelResult<f64>>),
    /// An f64 ticket answered by the mixed-precision refinement path:
    /// resolves [`KernelResult<f64>`] like [`KernelResolver::F64`], but
    /// groups under [`Precision::Refined`] so the drain loop routes its
    /// solve through `GramService::solve_prepared_refined`.
    Refined(TicketResolver<KernelResult<f64>>),
}

impl KernelResolver {
    fn precision(&self) -> Precision {
        match self {
            KernelResolver::F32(_) => Precision::F32,
            KernelResolver::F64(_) => Precision::F64,
            KernelResolver::Refined(_) => Precision::Refined,
        }
    }

    fn is_cancelled(&self) -> bool {
        match self {
            KernelResolver::F32(r) => r.is_cancelled(),
            KernelResolver::F64(r) => r.is_cancelled(),
            KernelResolver::Refined(r) => r.is_cancelled(),
        }
    }

    fn expire(self) {
        match self {
            KernelResolver::F32(r) => r.resolve(Err(RequestError::Expired)),
            KernelResolver::F64(r) => r.resolve(Err(RequestError::Expired)),
            KernelResolver::Refined(r) => r.resolve(Err(RequestError::Expired)),
        }
    }

    /// Retag an f64 resolver onto the refinement path. Only
    /// refined-constructed clients (which are `T = f64` by construction)
    /// call this; an f32 resolver passes through untouched.
    fn into_refined(self) -> Self {
        match self {
            KernelResolver::F64(r) => KernelResolver::Refined(r),
            other => other,
        }
    }
}

/// The [`Scalar`] instantiations a typed [`KernelClient`] can request at.
/// Sealed through `Scalar` itself (only `f32` and `f64` implement it); the
/// trait routes a typed ticket into the scheduler's command stream.
pub trait RequestScalar: Scalar {
    #[doc(hidden)]
    fn wrap_resolver(resolver: TicketResolver<KernelResult<Self>>) -> KernelResolver;
}

impl RequestScalar for f32 {
    fn wrap_resolver(resolver: TicketResolver<KernelResult<f32>>) -> KernelResolver {
        KernelResolver::F32(resolver)
    }
}

impl RequestScalar for f64 {
    fn wrap_resolver(resolver: TicketResolver<KernelResult<f64>>) -> KernelResolver {
        KernelResolver::F64(resolver)
    }
}

/// Cheap, cloneable producer/consumer handle to a running
/// [`GramScheduler`].
#[derive(Debug)]
pub struct GramClient<V, E> {
    tx: SyncSender<Command<V, E>>,
    watch: SnapshotWatch,
    capacity: usize,
    metrics: RuntimeMetrics,
}

impl<V, E> Clone for GramClient<V, E> {
    fn clone(&self) -> Self {
        GramClient {
            tx: self.tx.clone(),
            watch: self.watch.clone(),
            capacity: self.capacity,
            metrics: self.metrics.clone(),
        }
    }
}

impl<V, E> GramClient<V, E> {
    /// Enqueue a structure, blocking while the command channel is full.
    ///
    /// Returns in microseconds under normal load — the solve happens on the
    /// scheduler thread. Blocking on a full channel is the flow-control
    /// path: a producer outrunning the solver is throttled to its pace.
    pub fn submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        // raised before the send so a scraper never observes a queued
        // command the gauge has not counted; unwound if the send fails
        self.metrics.queue_depth.inc();
        self.tx.send(Command::Submit(structure)).map_err(|_| {
            self.metrics.queue_depth.dec();
            SchedulerError::Closed
        })
    }

    /// Enqueue a structure without blocking; a full channel reports
    /// [`SchedulerError::Backpressure`] so the producer can shed load.
    pub fn try_submit(&self, structure: Graph<V, E>) -> Result<(), SchedulerError> {
        if structure.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        self.metrics.queue_depth.inc();
        self.tx.try_send(Command::Submit(structure)).map_err(|e| {
            self.metrics.queue_depth.dec();
            match e {
                TrySendError::Full(_) => SchedulerError::Backpressure { capacity: self.capacity },
                TrySendError::Disconnected(_) => SchedulerError::Closed,
            }
        })
    }

    /// Enqueue a whole collection as one command (empty structures are
    /// skipped). Returns the number of structures enqueued.
    pub fn submit_all(
        &self,
        structures: impl IntoIterator<Item = Graph<V, E>>,
    ) -> Result<usize, SchedulerError> {
        let batch: Vec<Graph<V, E>> =
            structures.into_iter().filter(|g| g.num_vertices() > 0).collect();
        let n = batch.len();
        if n == 0 {
            return Ok(0);
        }
        self.metrics.queue_depth.add(n as f64);
        self.tx.send(Command::SubmitAll(batch)).map_err(|_| {
            self.metrics.queue_depth.add(-(n as f64));
            SchedulerError::Closed
        })?;
        Ok(n)
    }

    /// Barrier: block until every submission enqueued before this call has
    /// been admitted and solved, and report the resulting epoch.
    pub fn flush(&self) -> Result<BarrierReply, SchedulerError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx.send(Command::Barrier(reply_tx)).map_err(|_| SchedulerError::Closed)?;
        reply_rx.recv().map_err(|_| SchedulerError::Closed)
    }

    /// The versioned snapshot watch fed by this scheduler.
    pub fn watch(&self) -> SnapshotWatch {
        self.watch.clone()
    }

    /// The metrics registry of the scheduler's service — the scrape/pull
    /// surface (`registry.snapshot().render_prometheus()`).
    pub fn telemetry(&self) -> Arc<MetricsRegistry> {
        self.metrics.registry()
    }
}

/// The request-scoped serving handle: ask the scheduler for *one pair's*
/// kernel value and get a [`Ticket`] back immediately, instead of watching
/// whole-Gram snapshots.
///
/// A `KernelClient` shares the scheduler thread (and command channel) with
/// the flush lane of its sibling [`GramClient`]; requests ride the same
/// bounded channel, so producer backpressure applies uniformly. The type
/// parameter `T` picks the [`Scalar`] instantiation every request of this
/// client resolves at: `KernelClient<_, _, f64>` tickets carry
/// [`KernelResult<f64>`] — f64 values *and* nodal vectors — end-to-end.
///
/// Request-lane guarantees (see the module docs for the mechanism):
///
/// * duplicate in-flight requests for one pair **coalesce** onto a single
///   solve, every ticket woken with the shared answer;
/// * pairs the service has already solved are **answered from the pair
///   cache** without touching the solve lane;
/// * a ticket whose **deadline** passes before its solve starts resolves
///   [`RequestError::Expired`]; a **dropped** ticket cancels its request;
///   a scheduler that shuts down **closes** every outstanding ticket —
///   tickets can never hang, and stale requests never occupy the solver.
#[derive(Debug)]
pub struct KernelClient<V, E, T: RequestScalar = f32> {
    tx: SyncSender<Command<V, E>>,
    capacity: usize,
    metrics: RuntimeMetrics,
    /// Route this client's requests through the mixed-precision refinement
    /// path ([`Precision::Refined`]) instead of the plain `T`
    /// instantiation. Only set by refined constructors, which fix
    /// `T = f64` (refinement produces f64-quality answers).
    refined: bool,
    _precision: PhantomData<T>,
}

impl<V, E, T: RequestScalar> Clone for KernelClient<V, E, T> {
    fn clone(&self) -> Self {
        KernelClient {
            tx: self.tx.clone(),
            capacity: self.capacity,
            metrics: self.metrics.clone(),
            refined: self.refined,
            _precision: PhantomData,
        }
    }
}

impl<V, E, T: RequestScalar> KernelClient<V, E, T> {
    /// Request the kernel value of one pair, blocking while the command
    /// channel is full. The returned [`Ticket`] resolves to the pair's
    /// typed [`KernelResult<T>`].
    pub fn request(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        self.enqueue(left, right, None)
    }

    /// [`request`](Self::request) with a deadline: if the solve has not
    /// *started* within `budget`, the ticket resolves
    /// [`RequestError::Expired`] instead of occupying the solve lane.
    pub fn request_within(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
        budget: Duration,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        self.enqueue(left, right, Some(Instant::now() + budget))
    }

    /// [`request`](Self::request) without blocking: a full command channel
    /// reports [`SchedulerError::Backpressure`] so the caller can shed
    /// load.
    pub fn try_request(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        if left.num_vertices() == 0 || right.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        let (ticket, resolver) = ticket::<KernelResult<T>>();
        let mut resolver = T::wrap_resolver(resolver);
        if self.refined {
            resolver = resolver.into_refined();
        }
        let request =
            KernelRequest { left, right, deadline: None, resolver, intake: Stopwatch::start() };
        self.metrics.queue_depth.inc();
        self.tx.try_send(Command::Request(Box::new(request))).map_err(|e| {
            self.metrics.queue_depth.dec();
            match e {
                TrySendError::Full(_) => SchedulerError::Backpressure { capacity: self.capacity },
                TrySendError::Disconnected(_) => SchedulerError::Closed,
            }
        })?;
        Ok(ticket)
    }

    /// Request a whole batch of pairs in submission order. Duplicate pairs
    /// within the batch coalesce onto one solve on the scheduler side; the
    /// returned tickets are independent (drop any subset to cancel it).
    pub fn request_all(
        &self,
        pairs: impl IntoIterator<Item = (Graph<V, E>, Graph<V, E>)>,
    ) -> Result<Vec<Ticket<KernelResult<T>>>, SchedulerError> {
        pairs.into_iter().map(|(l, r)| self.request(l, r)).collect()
    }

    /// The metrics registry of the scheduler's service — the scrape/pull
    /// surface (`registry.snapshot().render_prometheus()`).
    pub fn telemetry(&self) -> Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    fn enqueue(
        &self,
        left: Graph<V, E>,
        right: Graph<V, E>,
        deadline: Option<Instant>,
    ) -> Result<Ticket<KernelResult<T>>, SchedulerError> {
        if left.num_vertices() == 0 || right.num_vertices() == 0 {
            return Err(SchedulerError::EmptyStructure);
        }
        let (ticket, resolver) = ticket::<KernelResult<T>>();
        let mut resolver = T::wrap_resolver(resolver);
        if self.refined {
            resolver = resolver.into_refined();
        }
        let request = KernelRequest { left, right, deadline, resolver, intake: Stopwatch::start() };
        self.metrics.queue_depth.inc();
        self.tx.send(Command::Request(Box::new(request))).map_err(|_| {
            self.metrics.queue_depth.dec();
            SchedulerError::Closed
        })?;
        Ok(ticket)
    }
}

/// A [`GramService`] running on a dedicated background thread. See the
/// module docs for the design.
#[derive(Debug)]
pub struct GramScheduler<KV, KE, V, E> {
    client: GramClient<V, E>,
    handle: JoinHandle<GramService<KV, KE, V, E>>,
}

impl<KV, KE, V, E> GramScheduler<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash + 'static,
    E: Copy + Default + Send + Sync + ContentHash + 'static,
    KV: BaseKernel<V> + Clone + Send + Sync + 'static,
    KE: BaseKernel<E> + Clone + Send + Sync + 'static,
{
    /// Move `service` onto a background scheduler thread.
    ///
    /// A pre-warmed service (structures admitted before the handoff) has
    /// its current snapshot published immediately, so watchers see the warm
    /// state without waiting for the first submission; submissions still
    /// pending inside the service are flushed first.
    pub fn spawn(service: GramService<KV, KE, V, E>, config: SchedulerConfig) -> Self {
        let capacity = config.channel_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel(capacity);
        // shared handles into the service's registry: clients record queue
        // depth (and hold the scrape surface) through the same cells the
        // scheduler thread records stages into
        let metrics = service.metrics().clone();
        let (publisher, watch) = snapshot_channel_counted(metrics.snapshot_builds.clone());
        let handle = std::thread::Builder::new()
            .name("mgk-gram-scheduler".to_string())
            .spawn(move || {
                // `publisher` lives on this frame: whether `run` returns or
                // unwinds on a solve panic, dropping it closes the watch and
                // unblocks every waiting consumer
                run(rx, capacity, service, &publisher)
            })
            .expect("spawning the scheduler thread");
        GramScheduler { client: GramClient { tx, watch, capacity, metrics }, handle }
    }

    /// [`spawn`](Self::spawn) with a durability plane: attach the store at
    /// `durability.dir` (recovering whatever a previous life persisted —
    /// warm cache entries, the epoch counter, the newest snapshot's
    /// triangle) and only then move the service onto the scheduler thread.
    ///
    /// A recovered triangle is published immediately at its snapshot's
    /// epoch, so watchers see the pre-crash state before the first new
    /// submission; the version counter resumes past the recovered epoch,
    /// keeping watch epochs monotone across lives. Returns the scheduler
    /// plus what recovery found. Refuses a corrupt or version-skewed store
    /// with the typed error instead of serving from a misread one.
    pub fn spawn_durable(
        mut service: GramService<KV, KE, V, E>,
        config: SchedulerConfig,
        durability: crate::persist::DurabilityConfig,
    ) -> Result<(Self, crate::persist::RecoveryReport), mgk_store::StoreError> {
        let report = service.attach_store(durability)?;
        Ok((Self::spawn(service, config), report))
    }

    /// A new producer/consumer handle (cheap; clone freely across threads).
    pub fn client(&self) -> GramClient<V, E> {
        self.client.clone()
    }

    /// A typed request client at the [`Scalar`] instantiation `T` (cheap;
    /// clone freely across threads). `kernel_client::<f32>()` serves the
    /// paper's f32 arithmetic; `kernel_client::<f64>()` resolves tickets to
    /// [`KernelResult<f64>`] with f64 nodal vectors end-to-end.
    pub fn kernel_client<T: RequestScalar>(&self) -> KernelClient<V, E, T> {
        KernelClient {
            tx: self.client.tx.clone(),
            capacity: self.client.capacity,
            metrics: self.client.metrics.clone(),
            refined: false,
            _precision: PhantomData,
        }
    }

    /// A typed request client on the **mixed-precision refinement** path:
    /// tickets resolve to [`KernelResult<f64>`] — f64-quality values and
    /// nodal vectors — computed by f32 inner PCG sweeps with f64 residual
    /// corrections ([`Precision::Refined`]), at a fraction of a plain f64
    /// solve's bandwidth cost. Refined requests group separately from
    /// `kernel_client::<f64>()` requests, but the cache entry a refined
    /// solve folds in answers later f64 *and* refined requests for the
    /// same pair.
    pub fn kernel_client_refined(&self) -> KernelClient<V, E, f64> {
        KernelClient {
            tx: self.client.tx.clone(),
            capacity: self.client.capacity,
            metrics: self.client.metrics.clone(),
            refined: true,
            _precision: PhantomData,
        }
    }

    /// The versioned snapshot watch fed by this scheduler.
    pub fn watch(&self) -> SnapshotWatch {
        self.client.watch.clone()
    }

    /// The metrics registry of the scheduler's service — the scrape/pull
    /// surface. Snapshot and render it while the scheduler runs:
    ///
    /// ```ignore
    /// let text = scheduler.telemetry().snapshot().render_prometheus();
    /// ```
    pub fn telemetry(&self) -> Arc<MetricsRegistry> {
        self.client.telemetry()
    }

    /// Gracefully shut down: every submission already enqueued is drained
    /// and solved, the final snapshot is published, and the service is
    /// returned for inspection. If the scheduler thread panicked, the panic
    /// is re-raised here.
    pub fn join(self) -> GramService<KV, KE, V, E> {
        // best-effort: the thread may already be gone (e.g. after a panic),
        // in which case the join below reports it
        let _ = self.client.tx.send(Command::Shutdown);
        drop(self.client);
        match self.handle.join() {
            Ok(service) => service,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// The scheduler thread body: receive, coalesce, flush, publish, repeat.
fn run<KV, KE, V, E>(
    rx: Receiver<Command<V, E>>,
    capacity: usize,
    mut service: GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
) -> GramService<KV, KE, V, E>
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    let metrics = service.metrics().clone();

    // hand-off state: flush anything already pending, publish warm state —
    // or, on a durable cold start, the triangle recovered from the store's
    // newest snapshot (at the snapshot's own epoch, strictly below every
    // epoch a future admitting flush will publish)
    if service.num_pending() > 0 {
        flush_and_publish(&mut service, publisher);
    } else if service.num_structures() > 0 {
        publish(&mut service, publisher);
    } else if let Some((epoch, source)) = service.take_recovered_source() {
        let _span = metrics.stage_publish.span();
        publisher.publish(epoch, source);
    }

    loop {
        let first = match rx.recv() {
            Ok(cmd) => cmd,
            // every client is gone: nothing more can arrive
            Err(_) => break,
        };
        // coalesce whatever has queued up behind the first command into one
        // batch — under load, many submissions amortize into one flush. The
        // drain is capped at one channel's worth per batch: producers
        // refilling the channel as fast as we drain it must not postpone
        // the flush (and any barrier) indefinitely
        let mut commands = vec![first];
        while commands.len() <= capacity {
            match rx.try_recv() {
                Ok(cmd) => commands.push(cmd),
                Err(_) => break,
            }
        }
        // the drained commands leave the queue now; clients raised the
        // gauge one unit per structure/request when they enqueued
        for command in &commands {
            match command {
                Command::Submit(_) | Command::Request(_) => metrics.queue_depth.dec(),
                Command::SubmitAll(gs) => metrics.queue_depth.add(-(gs.len() as f64)),
                Command::Barrier(_) | Command::Shutdown => {}
            }
        }
        // raised for the whole processing cycle; RAII so a solve panic
        // unwinding through `run` cannot leave the gauge stuck at 1
        let _busy = metrics.scheduler_busy.track();

        let mut shutdown = false;
        let mut barriers: Vec<mpsc::Sender<BarrierReply>> = Vec::new();
        let mut requests: Vec<KernelRequest<V, E>> = Vec::new();
        for command in commands {
            match command {
                Command::Submit(g) => admit(&mut service, publisher, g),
                Command::SubmitAll(gs) => {
                    for g in gs {
                        admit(&mut service, publisher, g);
                    }
                }
                Command::Barrier(reply) => barriers.push(reply),
                Command::Request(req) => requests.push(*req),
                Command::Shutdown => shutdown = true,
            }
        }

        if service.num_pending() > 0 {
            flush_and_publish(&mut service, publisher);
        }
        // the request lane runs after the flush lane so requests in the
        // same drain see the freshest cache (and before the barrier
        // replies, so a barrier-then-wait consumer cannot outrun them)
        serve_requests(&mut service, requests);
        // request-lane folds appended to the WAL without a flush boundary
        // of their own: sync them before the drain cycle ends
        service.persist_request_boundary();
        for barrier in barriers {
            // a client that gave up waiting is not an error
            let _ = barrier.send(BarrierReply {
                epoch: service.version(),
                num_structures: service.num_structures(),
            });
        }
        if shutdown {
            // commands a racing producer enqueued *after* the shutdown are
            // dropped with the receiver; everything before it was drained
            // (requests among them resolve Closed as their resolvers drop)
            break;
        }
    }
    // graceful exit: capture a final snapshot so the next life replays a
    // compact snapshot instead of the whole log tail
    service.persist_final_snapshot();
    service
}

/// The request lane: group the drained requests by pair identity and
/// precision, skip what cannot or need not run (cancelled, expired,
/// cache-answerable), and solve once per surviving group — every ticket of
/// a group is woken with the shared answer.
fn serve_requests<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    requests: Vec<KernelRequest<V, E>>,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    if requests.is_empty() {
        return;
    }
    let metrics = service.metrics().clone();
    // coalesce: one group per (pair identity, precision), keyed by the
    // *raw* content identity so duplicates share the per-pair
    // preprocessing (reordering) as well as the solve — preparation runs
    // once per group, below, not once per ticket. The key is the ORDERED
    // side pair, not the normalized PairKey: a solved request's nodal
    // vector is laid out in the request's orientation (row-major n_left ×
    // n_right), so (A, B) and (B, A) must not share one solve result —
    // the second orientation resolves from the symmetric cache entry the
    // first one inserts (value only, no transposed vector)
    type Group<V, E> = (Graph<V, E>, Graph<V, E>, Vec<LiveTicket>);
    type Slot = ((PairSide, PairSide), Precision);
    let mut groups: HashMap<Slot, Group<V, E>> = HashMap::new();
    let mut order: Vec<Slot> = Vec::new();
    // a span, not a stopwatch: the content hashers grouping calls into can
    // panic (tests rely on it), and the drain stage must stay balanced
    // through that unwind
    let drain_span = metrics.stage_drain.span();
    for req in requests {
        if req.resolver.is_cancelled() {
            // the ticket is gone; dropping the resolver is the whole skip
            service.note_request_cancelled();
            continue;
        }
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            service.note_request_expired_in_queue();
            req.resolver.expire();
            continue;
        }
        // the queue-wait stage ends here, where grouping admits the ticket
        let queue_wait_ns = req.intake.elapsed_ns();
        metrics.stage_queue_wait.record(queue_wait_ns);
        let live = LiveTicket {
            resolver: req.resolver,
            deadline: req.deadline,
            intake: req.intake,
            queue_wait_ns,
        };
        let precision = live.resolver.precision();
        let slot = (service.raw_pair_sides(&req.left, &req.right), precision);
        match groups.get_mut(&slot) {
            Some((_, _, tickets)) => {
                service.note_requests_coalesced(1);
                tickets.push(live);
            }
            None => {
                order.push(slot);
                groups.insert(slot, (req.left, req.right, vec![live]));
            }
        }
    }
    drop(drain_span);

    // waves: consecutive groups with *distinct* normalized pair identities
    // fan their solves out across the worker pool together; a group whose
    // identity is already claimed by the current wave closes it first, so
    // same-key groups keep their sequential cache dependency (e.g. the
    // mirrored orientation of a pair answers, value-only, from the cache
    // entry its sibling's fold inserts)
    let mut wave: Vec<ReadyGroup<V, E>> = Vec::new();
    let mut wave_keys: HashSet<PairKey> = HashSet::new();
    for slot in order {
        let (left, right, tickets) = groups.remove(&slot).expect("group inserted above");
        let (_, precision) = slot;
        // cancellations and deadlines may have landed while earlier groups
        // solved; re-check so no solve starts for a fully stale group
        let mut live: Vec<LiveTicket> = Vec::new();
        for ticket in tickets {
            if ticket.resolver.is_cancelled() {
                service.note_request_cancelled();
            } else if ticket.deadline.is_some_and(|d| Instant::now() >= d) {
                service.note_request_expired_pre_solve();
                ticket.resolver.expire();
            } else {
                live.push(ticket);
            }
        }
        if live.is_empty() {
            continue;
        }
        // one preparation per group, shared by every coalesced ticket;
        // runs on the owning thread — it may mutate the reorder cache
        let prepared = service.prepare_pair(&left, &right);
        if !wave_keys.insert(prepared.key()) {
            solve_wave(service, std::mem::take(&mut wave));
            wave_keys.clear();
            wave_keys.insert(prepared.key());
        }
        // the cache probe also stays on the owning thread (it touches
        // recency), before this group enters the parallel fan-out
        let cached = service.cached_answer(prepared.key(), precision);
        wave.push(ReadyGroup { prepared, precision, cached, tickets: live });
    }
    solve_wave(service, wave);
}

/// A coalesced request group admitted to the current wave: prepared,
/// cache-probed, and carrying its surviving tickets.
struct ReadyGroup<V, E> {
    prepared: PreparedPair<V, E>,
    precision: Precision,
    cached: Option<CachedEntry>,
    tickets: Vec<LiveTicket>,
}

/// The typed outcome of one wave group's pure solve, produced on a worker
/// thread and folded on the owning thread.
enum WaveSolve {
    F32(RequestSolve<f32>),
    F64(RequestSolve<f64>),
    Refined(RequestSolve<f64>),
}

/// Solve one wave: the pure solves of all cache-missed groups fan out
/// across the worker pool in parallel (the service is borrowed shared, so
/// cache, donors and reorder state are untouchable there), then the folds
/// and ticket fan-outs run sequentially in wave order on the owning
/// thread — the single-writer half.
fn solve_wave<KV, KE, V, E>(service: &mut GramService<KV, KE, V, E>, wave: Vec<ReadyGroup<V, E>>)
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    if wave.is_empty() {
        return;
    }
    let outcomes: Vec<(usize, Option<WaveSolve>)> = {
        let svc: &GramService<KV, KE, V, E> = service;
        wave.par_iter()
            .enumerate()
            .map(|(idx, group)| {
                if group.cached.is_some() {
                    return (idx, None);
                }
                let solve = match group.precision {
                    Precision::F32 => WaveSolve::F32(svc.solve_prepared::<f32>(&group.prepared)),
                    Precision::F64 => WaveSolve::F64(svc.solve_prepared::<f64>(&group.prepared)),
                    Precision::Refined => {
                        WaveSolve::Refined(svc.solve_prepared_refined(&group.prepared))
                    }
                };
                (idx, Some(solve))
            })
            .collect()
    };
    // route every outcome back to its wave slot by index, then fold in
    // wave order so cache/donor state evolves exactly as a sequential
    // drain would have left it
    let mut solves: Vec<Option<WaveSolve>> = wave.iter().map(|_| None).collect();
    for (idx, solve) in outcomes {
        solves[idx] = solve;
    }
    for (group, solve) in wave.into_iter().zip(solves) {
        finish_group(service, group, solve);
    }
}

/// A request that survived the in-queue expiry checkpoint: its resolver,
/// deadline, the intake stopwatch (still running — it times the ticket
/// end-to-end) and the queue wait already credited to the ticket.
struct LiveTicket {
    resolver: KernelResolver,
    deadline: Option<Instant>,
    intake: Stopwatch,
    queue_wait_ns: u64,
}

/// Finish one wave group on the owning thread: fold its solve (or replay
/// its cache entry), then wake every coalesced ticket with the shared
/// answer. Groups are precision-homogeneous — each arm resolves exactly
/// its own resolver variant.
fn finish_group<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    group: ReadyGroup<V, E>,
    solve: Option<WaveSolve>,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    let ReadyGroup { prepared, precision, cached, tickets } = group;
    let latency = service.metrics().request_latency.clone();
    match precision {
        Precision::F32 => {
            let result: Result<KernelResult<f32>, RequestError> = match cached {
                // a value-only replay, upgraded with the pair's nodal
                // vector when the side-cache still holds this orientation
                // (f32 only: a narrowed vector must not answer a request
                // that was promised f64 accuracy)
                Some(entry) => {
                    let mut replayed = replay_entry::<f32>(&entry, prepared.prepare_ns());
                    replayed.nodal = service.cached_nodal(&prepared);
                    Ok(replayed)
                }
                None => match solve {
                    Some(WaveSolve::F32(s)) => service
                        .fold_request_solve(&prepared, s, Precision::F32)
                        .map_err(RequestError::Solver),
                    _ => unreachable!("wave solves are precision-matched to their group"),
                },
            };
            fan_out(tickets, result, &latency, |resolver, answer| match resolver {
                KernelResolver::F32(r) => r.resolve(answer),
                _ => unreachable!("precision-homogeneous group"),
            });
        }
        Precision::F64 => {
            let result: Result<KernelResult<f64>, RequestError> = match cached {
                Some(entry) => Ok(replay_entry::<f64>(&entry, prepared.prepare_ns())),
                None => match solve {
                    Some(WaveSolve::F64(s)) => service
                        .fold_request_solve(&prepared, s, Precision::F64)
                        .map_err(RequestError::Solver),
                    _ => unreachable!("wave solves are precision-matched to their group"),
                },
            };
            fan_out(tickets, result, &latency, |resolver, answer| match resolver {
                KernelResolver::F64(r) => r.resolve(answer),
                _ => unreachable!("precision-homogeneous group"),
            });
        }
        Precision::Refined => {
            let result: Result<KernelResult<f64>, RequestError> = match cached {
                Some(entry) => Ok(replay_entry::<f64>(&entry, prepared.prepare_ns())),
                None => match solve {
                    // the entry is tagged Refined, so it answers later f64
                    // and refined requests for this pair
                    Some(WaveSolve::Refined(s)) => service
                        .fold_request_solve(&prepared, s, Precision::Refined)
                        .map_err(RequestError::Solver),
                    _ => unreachable!("wave solves are precision-matched to their group"),
                },
            };
            fan_out(tickets, result, &latency, |resolver, answer| match resolver {
                KernelResolver::Refined(r) => r.resolve(answer),
                _ => unreachable!("precision-homogeneous group"),
            });
        }
    }
}

/// A cache entry replayed as a typed answer: the stored full-precision
/// value with the group's preparation cost stamped on (preparation ran
/// even though the solve was skipped).
fn replay_entry<T: Scalar>(entry: &CachedEntry, prepare_ns: u64) -> KernelResult<T> {
    let mut replayed = result_from_entry::<T>(entry);
    replayed.stages.prepare_ns = prepare_ns;
    replayed
}

/// Wake every ticket of a group with one shared answer: clones for all
/// but the last, which takes the answer by move. Each ticket's copy is
/// stamped with that ticket's own queue wait (coalesced tickets share the
/// solve, not the wait), and its end-to-end latency is recorded at the
/// moment of resolution.
fn fan_out<T: Scalar>(
    tickets: Vec<LiveTicket>,
    answer: Result<KernelResult<T>, RequestError>,
    latency: &Histogram,
    resolve: impl Fn(KernelResolver, Result<KernelResult<T>, RequestError>),
) {
    let total = tickets.len();
    let mut answer = Some(answer);
    for (k, ticket) in tickets.into_iter().enumerate() {
        let mut shared = if k + 1 == total {
            answer.take().expect("the answer is moved exactly once, into the last ticket")
        } else {
            answer.clone().expect("the answer is only taken by the last ticket")
        };
        if let Ok(result) = &mut shared {
            result.stages.queue_wait_ns = ticket.queue_wait_ns;
        }
        latency.record(ticket.intake.elapsed_ns());
        resolve(ticket.resolver, shared);
    }
}

/// A cache entry replayed as a typed result: the stored full-precision
/// value, no nodal vector (the cache keeps values, not megabyte vectors)
/// and no fresh traffic.
fn result_from_entry<T: Scalar>(entry: &CachedEntry) -> KernelResult<T> {
    KernelResult {
        value: T::from_f64(entry.value_f64),
        value_f64: entry.value_f64,
        iterations: entry.iterations,
        converged: true,
        relative_residual: entry.relative_residual,
        traffic: TrafficCounters::new(),
        nodal: None,
        stages: StageBreakdown::default(),
    }
}

/// Queue one structure into the service, flushing mid-batch if the
/// service's own pending bound fills up first.
fn admit<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
    g: Graph<V, E>,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    if service.num_pending() >= service.config().max_pending {
        // the service queue is smaller than the coalesced batch: flush what
        // is pending (publishing the intermediate epoch) so the submission
        // below cannot hit backpressure
        flush_and_publish(service, publisher);
    }
    match service.submit(g) {
        Ok(_) => {}
        Err(GramServiceError::Backpressure { .. }) => {
            debug_assert!(false, "queue was flushed; backpressure is impossible here");
        }
        // the client already rejects empty structures; dropping a stray one
        // mirrors GramService::submit_all
        Err(GramServiceError::EmptyStructure) => {}
    }
}

/// Flush the service and publish the fresh snapshot under its new version.
fn flush_and_publish<KV, KE, V, E>(
    service: &mut GramService<KV, KE, V, E>,
    publisher: &SnapshotPublisher,
) where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    // an epoch nobody observed still shares the service's triangle: drop
    // that share first so the flush below appends in place instead of
    // paying a copy-on-write clone for a snapshot nobody will ever build
    publisher.retire_unobserved();
    service.flush();
    publish(service, publisher);
}

/// Publish the service's current snapshot *source* at its current version.
///
/// Publication is lazy: only the raw triangle is captured here. The dense
/// O(n²) snapshot is materialized by the watch on the first
/// `wait_newer`/`latest` that observes the epoch, so flushes nobody
/// watches never build a matrix (see `SnapshotWatch::snapshot_builds`).
fn publish<KV, KE, V, E>(service: &mut GramService<KV, KE, V, E>, publisher: &SnapshotPublisher)
where
    V: Clone + Send + Sync + ContentHash,
    E: Copy + Default + Send + Sync + ContentHash,
    KV: BaseKernel<V> + Clone + Send + Sync,
    KE: BaseKernel<E> + Clone + Send + Sync,
{
    let _span = service.metrics().stage_publish.span();
    publisher.publish(service.version(), service.snapshot_source());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::graph_content_hash;
    use crate::service::GramServiceConfig;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    type UnlabeledScheduler = GramScheduler<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    >;

    fn dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|k| generators::newman_watts_strogatz(10 + k % 4, 2, 0.2, &mut rng)).collect()
    }

    fn service(
        config: GramServiceConfig,
    ) -> GramService<
        mgk_kernels::UnitKernel,
        mgk_kernels::UnitKernel,
        mgk_graph::Unlabeled,
        mgk_graph::Unlabeled,
    > {
        GramService::new(MarginalizedKernelSolver::unlabeled(SolverConfig::default()), config)
    }

    fn spawn_default() -> UnlabeledScheduler {
        GramScheduler::spawn(service(GramServiceConfig::default()), SchedulerConfig::default())
    }

    #[test]
    fn submissions_flow_through_the_background_thread() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let graphs = dataset(3, 5);
        for g in &graphs {
            client.submit(g.clone()).unwrap();
        }
        let reply = client.flush().unwrap();
        assert_eq!(reply.num_structures, 3);
        assert!(reply.epoch >= 1);

        // the barrier guarantees the snapshot is published
        let latest = scheduler.watch().latest().expect("snapshot published after the barrier");
        assert_eq!(latest.snapshot.num_graphs, 3);
        assert!(latest.snapshot.matrix.iter().all(|v| v.is_finite()));

        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 3);
        assert_eq!(svc.stats().jobs_executed, 3 * 4 / 2);
    }

    #[test]
    fn join_drains_outstanding_submissions() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let graphs = dataset(5, 11);
        let n = client.submit_all(graphs).unwrap();
        assert_eq!(n, 5);
        // no barrier: join itself must drain and solve everything enqueued
        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 5);
        assert_eq!(svc.stats().jobs_executed, 5 * 6 / 2);
        assert_eq!(svc.num_pending(), 0);
    }

    #[test]
    fn a_panicking_solve_propagates_to_join_and_closes_the_watch() {
        let panicking: fn(&Graph) -> u64 = |_| panic!("forced solve-path panic");
        let svc = service(GramServiceConfig::default()).with_content_hasher(panicking);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let client = scheduler.client();
        let watch = scheduler.watch();

        client.submit(dataset(1, 13).pop().unwrap()).unwrap();
        // the thread dies flushing; consumers must be unblocked, not hung
        assert_eq!(watch.wait_newer(0).unwrap_err(), crate::watch::WatchClosed);
        let propagated = catch_unwind(AssertUnwindSafe(move || scheduler.join()));
        assert!(propagated.is_err(), "the scheduler panic was swallowed");
        // post-mortem clients observe closure, not deadlock
        assert_eq!(client.flush(), Err(SchedulerError::Closed));
    }

    #[test]
    fn wait_newer_wakes_exactly_once_per_epoch() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let watch = scheduler.watch();
        let graphs = dataset(2, 17);

        client.submit(graphs[0].clone()).unwrap();
        let first_epoch = client.flush().unwrap().epoch;
        let v1 = watch.wait_newer(0).unwrap();
        assert_eq!(v1.epoch, first_epoch);
        assert_eq!(v1.snapshot.num_graphs, 1);

        client.submit(graphs[1].clone()).unwrap();
        let second_epoch = client.flush().unwrap().epoch;
        assert_eq!(second_epoch, first_epoch + 1, "one epoch per completed flush");
        let v2 = watch.wait_newer(v1.epoch).unwrap();
        assert_eq!(v2.epoch, second_epoch);
        assert_eq!(v2.snapshot.num_graphs, 2);

        scheduler.join();
        // nothing newer ever arrives: the consumer is woken for closure,
        // not handed a stale epoch twice
        assert_eq!(watch.wait_newer(v2.epoch).unwrap_err(), crate::watch::WatchClosed);
    }

    // Gate shared with `gated_hash` so the backpressure test can hold the
    // scheduler thread inside a flush deterministically.
    static GATE: Mutex<()> = Mutex::new(());

    fn gated_hash(g: &Graph) -> u64 {
        let _held = GATE.lock().unwrap();
        graph_content_hash(g)
    }

    #[test]
    fn try_submit_reports_backpressure_when_the_channel_fills() {
        let gate = GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig { channel_capacity: 1 });
        let client = scheduler.client();
        let g = dataset(1, 19).pop().unwrap();

        // the scheduler picks up early submissions and then blocks on the
        // gate inside its flush; with a 1-slot channel the producer sees
        // backpressure after at most a handful of accepted submissions
        client.submit(g.clone()).unwrap();
        let mut accepted = 1;
        let mut saw_backpressure = false;
        for _ in 0..200 {
            match client.try_submit(g.clone()) {
                Ok(()) => accepted += 1,
                Err(SchedulerError::Backpressure { capacity: 1 }) => {
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(saw_backpressure, "a full 1-slot channel must report backpressure");

        // release the solver; every accepted submission must be admitted
        drop(gate);
        let reply = client.flush().unwrap();
        assert_eq!(reply.num_structures, accepted);
        scheduler.join();
    }

    #[test]
    fn empty_structures_are_rejected_client_side() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let empty: Graph = Graph::from_edge_list(0, &[]);
        assert_eq!(client.submit(empty.clone()), Err(SchedulerError::EmptyStructure));
        assert_eq!(client.try_submit(empty.clone()), Err(SchedulerError::EmptyStructure));
        assert_eq!(client.submit_all(vec![empty]), Ok(0));
        assert_eq!(client.flush().unwrap().num_structures, 0);
        scheduler.join();
    }

    #[test]
    fn a_prewarmed_service_publishes_its_snapshot_on_spawn() {
        let mut svc = service(GramServiceConfig::default());
        for g in dataset(3, 23) {
            svc.submit(g).unwrap();
        }
        svc.flush();
        let warm_version = svc.version();

        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let v = scheduler.watch().wait_newer(0).unwrap();
        assert_eq!(v.epoch, warm_version);
        assert_eq!(v.snapshot.num_graphs, 3);
        scheduler.join();
    }

    #[test]
    fn unwatched_epochs_do_not_build_snapshots() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        let watch = scheduler.watch();
        let graphs = dataset(4, 31);

        // three admitting flushes, no consumer looking: the solves run and
        // the epochs advance, but no O(n²) snapshot is ever materialized
        let mut last_epoch = 0;
        for g in &graphs[..3] {
            client.submit(g.clone()).unwrap();
            last_epoch = client.flush().unwrap().epoch;
        }
        assert!(last_epoch >= 3);
        assert_eq!(watch.snapshot_builds(), 0, "unwatched epochs must not build snapshots");

        // the first observation builds exactly one snapshot — of the
        // newest epoch only, the skipped ones stay unbuilt forever
        let v = watch.wait_newer(0).unwrap();
        assert_eq!(v.epoch, last_epoch);
        assert_eq!(v.snapshot.num_graphs, 3);
        assert_eq!(watch.snapshot_builds(), 1);
        // repeat polls reuse the cached build
        assert_eq!(watch.latest().unwrap().epoch, last_epoch);
        assert_eq!(watch.snapshot_builds(), 1);
        scheduler.join();
    }

    // A second gate for the request-lane tests, so they never contend with
    // the backpressure test's gate.
    static REQUEST_GATE: Mutex<()> = Mutex::new(());

    fn request_gated_hash(g: &Graph) -> u64 {
        let _held = REQUEST_GATE.lock().unwrap();
        graph_content_hash(g)
    }

    #[test]
    fn requests_resolve_with_correct_values_and_cache_answers() {
        let scheduler = spawn_default();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(2, 101);
        let direct = MarginalizedKernelSolver::unlabeled(SolverConfig::default())
            .kernel(&graphs[0], &graphs[1])
            .unwrap();

        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        let first = ticket.wait().expect("request must resolve");
        assert!(first.converged);
        assert!(first.nodal.is_some(), "a solved request carries its nodal vector");
        assert!(
            (first.value - direct.value).abs() <= 1e-4 * direct.value.abs(),
            "request {} vs direct {}",
            first.value,
            direct.value
        );

        // the same pair again: answered from the cache, no second solve —
        // and the nodal side-cache upgrades the value replay with the
        // vector the first solve retained for this exact orientation
        let again = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        let second = again.wait().unwrap();
        assert_eq!(second.value, first.value);
        assert_eq!(
            second.nodal, first.nodal,
            "a same-orientation cache answer carries the retained nodal vector"
        );

        let svc = scheduler.join();
        assert_eq!(svc.stats().request_solves, 1);
        assert_eq!(svc.stats().request_cache_answers, 1);
        assert_eq!(svc.stats().nodal_hits, 1, "the replayed vector came from the side-cache");
    }

    #[test]
    fn empty_requests_are_rejected_client_side() {
        let scheduler = spawn_default();
        let kernels = scheduler.kernel_client::<f32>();
        let empty: Graph = Graph::from_edge_list(0, &[]);
        let g = dataset(1, 107).pop().unwrap();
        assert!(matches!(
            kernels.request(empty.clone(), g.clone()),
            Err(SchedulerError::EmptyStructure)
        ));
        assert!(matches!(kernels.try_request(g, empty), Err(SchedulerError::EmptyStructure)));
        scheduler.join();
    }

    #[test]
    fn coalesced_requests_for_one_pair_solve_once_and_all_wake() {
        let gate = REQUEST_GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(request_gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let producers = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(3, 103);

        // park the scheduler inside a gated flush, so every request below
        // lands in one coalesced drain
        producers.submit(graphs[2].clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let tickets: Vec<_> = (0..6)
            .map(|_| kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap())
            .collect();
        drop(gate);

        let values: Vec<f32> = tickets.iter().map(|t| t.wait().unwrap().value).collect();
        assert!(values.iter().all(|v| v.is_finite()));
        assert!(values.windows(2).all(|w| w[0] == w[1]), "all tickets share one answer");

        let svc = scheduler.join();
        assert_eq!(svc.stats().request_solves, 1, "six tickets, exactly one solve");
        assert_eq!(svc.stats().requests_coalesced, 5);
        assert_eq!(svc.stats().request_cache_answers, 0);
    }

    #[test]
    fn opposite_orientations_never_share_a_transposed_nodal_vector() {
        let gate = REQUEST_GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(request_gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let producers = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        // different vertex counts, so a transposed nodal layout would be
        // silently wrong rather than shape-checked
        let graphs = dataset(3, 149);
        let (a, b) = (graphs[0].clone(), graphs[1].clone());
        assert_ne!(a.num_vertices(), b.num_vertices());

        // park the scheduler so both orientations land in one drain
        producers.submit(graphs[2].clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ab = kernels.request(a.clone(), b.clone()).unwrap();
        let ba = kernels.request(b.clone(), a.clone()).unwrap();
        drop(gate);

        let first = ab.wait().unwrap();
        let second = ba.wait().unwrap();
        // the kernel is symmetric, so the values agree …
        assert_eq!(first.value, second.value);
        // … but the two orientations must not have shared one solve: the
        // first solves (nodal in ITS orientation), the mirrored request is
        // answered from the symmetric cache entry, value-only
        assert_eq!(
            first.nodal.expect("the solved orientation carries its nodal vector").len(),
            a.num_vertices() * b.num_vertices()
        );
        assert!(second.nodal.is_none(), "no transposed vector may be handed out");

        let svc = scheduler.join();
        assert_eq!(svc.stats().request_solves, 1);
        assert_eq!(svc.stats().request_cache_answers, 1);
        assert_eq!(svc.stats().requests_coalesced, 0, "orientations must not coalesce");
        // the nodal side-cache is orientation-sensitive too: the mirrored
        // replay probed it and missed
        assert_eq!(svc.stats().nodal_hits, 0);
        assert_eq!(svc.stats().nodal_misses, 1);
    }

    #[test]
    fn a_deadline_expiring_mid_queue_skips_the_solve() {
        let gate = REQUEST_GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(request_gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let producers = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(3, 109);

        producers.submit(graphs[2].clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ticket = kernels
            .request_within(
                graphs[0].clone(),
                graphs[1].clone(),
                std::time::Duration::from_millis(20),
            )
            .unwrap();
        // the deadline passes while the request waits behind the gate
        std::thread::sleep(std::time::Duration::from_millis(40));
        drop(gate);

        assert_eq!(ticket.wait(), Err(crate::ticket::RequestError::Expired));
        let svc = scheduler.join();
        assert_eq!(svc.stats().requests_expired, 1);
        // the deadline passed while the ticket sat in the command queue, so
        // the expiry is attributed to the queue phase, not pre-solve
        assert_eq!(svc.stats().requests_expired_in_queue, 1);
        assert_eq!(svc.stats().requests_expired_pre_solve, 0);
        assert_eq!(svc.stats().request_solves, 0, "an expired request never occupies the solver");
    }

    // Hasher for the pre-solve expiry test: hashing the 7-vertex sentinel
    // graph stalls long enough for a sibling group's deadline to pass
    // between the drain checkpoint and its pre-solve checkpoint.
    fn stalling_hash(g: &Graph) -> u64 {
        let _held = REQUEST_GATE.lock().unwrap();
        if g.num_vertices() == 7 {
            std::thread::sleep(std::time::Duration::from_millis(300));
        }
        graph_content_hash(g)
    }

    #[test]
    fn a_deadline_expiring_after_drain_counts_as_pre_solve() {
        let gate = REQUEST_GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(stalling_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let producers = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(4, 151);
        let stalling: Graph =
            Graph::from_edge_list(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        assert!(graphs.iter().all(|g| g.num_vertices() != 7));

        // park the scheduler inside a gated flush so both requests below
        // land in one coalesced drain
        producers.submit(graphs[2].clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        // drained first: passes the in-queue checkpoint well inside its
        // deadline, then waits while the second request's grouping hash
        // stalls 300ms — its deadline passes *after* drain admission
        let doomed = kernels
            .request_within(
                graphs[0].clone(),
                graphs[1].clone(),
                std::time::Duration::from_millis(100),
            )
            .unwrap();
        let stalled = kernels.request(stalling, graphs[3].clone()).unwrap();
        drop(gate);

        assert_eq!(doomed.wait(), Err(crate::ticket::RequestError::Expired));
        assert!(stalled.wait().is_ok(), "the stalling pair itself still resolves");
        let svc = scheduler.join();
        assert_eq!(svc.stats().requests_expired_in_queue, 0);
        assert_eq!(svc.stats().requests_expired_pre_solve, 1);
        assert_eq!(svc.stats().requests_expired, 1);
        assert_eq!(svc.stats().request_solves, 1, "only the surviving group was solved");
    }

    #[test]
    fn cancellation_by_drop_skips_the_solve() {
        let gate = REQUEST_GATE.lock().unwrap();
        let svc = service(GramServiceConfig::default()).with_content_hasher(request_gated_hash);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let producers = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(3, 113);

        producers.submit(graphs[2].clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        drop(ticket);
        drop(gate);

        let svc = scheduler.join();
        assert_eq!(svc.stats().requests_cancelled, 1);
        assert_eq!(svc.stats().request_solves, 0, "a dropped ticket never occupies the solver");
    }

    #[test]
    fn join_drains_outstanding_requests_before_shutdown() {
        let scheduler = spawn_default();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(2, 127);
        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        // no wait before join: the drain must still answer the ticket
        let svc = scheduler.join();
        assert!(ticket.wait().is_ok(), "join must drain outstanding requests");
        assert_eq!(svc.stats().request_solves, 1);
        // post-shutdown requests observe closure at the channel
        assert!(matches!(
            kernels.request(graphs[0].clone(), graphs[1].clone()),
            Err(SchedulerError::Closed)
        ));
    }

    #[test]
    fn a_panicking_scheduler_closes_outstanding_tickets() {
        let panicking: fn(&Graph) -> u64 = |_| panic!("forced request-path panic");
        let svc = service(GramServiceConfig::default()).with_content_hasher(panicking);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(2, 131);

        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        // the thread dies hashing the request pair; the ticket must close,
        // not hang
        assert_eq!(ticket.wait(), Err(crate::ticket::RequestError::Closed));
        let propagated = catch_unwind(AssertUnwindSafe(move || scheduler.join()));
        assert!(propagated.is_err(), "the scheduler panic was swallowed");
    }

    #[test]
    fn typed_f64_requests_resolve_with_f64_nodal_vectors() {
        let scheduler = spawn_default();
        let kernels = scheduler.kernel_client::<f64>();
        let graphs = dataset(2, 137);
        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        let result = ticket.wait().expect("typed request must resolve");
        assert!(result.converged);
        assert_eq!(result.value, result.value_f64, "f64 results carry the full value");
        let nodal = result.nodal.expect("typed solved requests carry nodal vectors");
        assert!(nodal.iter().all(|v: &f64| v.is_finite()));
        let svc = scheduler.join();
        assert_eq!(svc.stats().request_solves, 1);
    }

    #[test]
    fn unwatched_scheduler_flushes_never_copy_the_triangle() {
        let scheduler = spawn_default();
        let client = scheduler.client();
        // several admitting flushes, each publishing an epoch nobody
        // observes: retirement must keep every flush copy-free
        for g in dataset(4, 139) {
            client.submit(g).unwrap();
            client.flush().unwrap();
        }
        let svc = scheduler.join();
        assert_eq!(svc.stats().triangle_copies, 0, "unwatched publication must be O(1)");
    }

    #[test]
    fn coalesced_batches_exceeding_the_service_queue_are_split_not_lost() {
        // service queue of 2, one coalesced wave of 6: the scheduler must
        // flush mid-batch instead of dropping submissions
        let svc = service(GramServiceConfig { max_pending: 2, ..Default::default() });
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let client = scheduler.client();
        client.submit_all(dataset(6, 29)).unwrap();
        let svc = scheduler.join();
        assert_eq!(svc.num_structures(), 6, "mid-batch flushes must not lose structures");
    }

    #[test]
    fn solved_requests_report_their_stage_breakdown() {
        let scheduler = spawn_default();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(2, 157);
        let ticket = kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap();
        let result = ticket.wait().unwrap();
        if mgk_telemetry::COMPILED {
            assert!(result.stages.solve_ns > 0, "a solved request times its solve stage");
            assert!(result.stages.total_ns() >= result.stages.solve_ns);
        }
        scheduler.join();
    }

    #[test]
    fn the_scrape_surface_reports_stages_and_queue_state() {
        use crate::metrics::names;

        let scheduler = spawn_default();
        let client = scheduler.client();
        let kernels = scheduler.kernel_client::<f32>();
        let graphs = dataset(3, 163);
        client.submit(graphs[2].clone()).unwrap();
        client.flush().unwrap();
        kernels.request(graphs[0].clone(), graphs[1].clone()).unwrap().wait().unwrap();

        let snapshot = scheduler.telemetry().snapshot();
        if mgk_telemetry::COMPILED {
            let queue_wait = snapshot
                .histogram(names::STAGE_DURATION, Some(("stage", "queue_wait")))
                .expect("queue-wait stage histogram registered");
            assert_eq!(queue_wait.count(), 1, "one admitted request, one queue wait");
            let solve = snapshot
                .histogram(names::STAGE_DURATION, Some(("stage", "solve")))
                .expect("solve stage histogram registered");
            assert!(solve.count() >= 1);
            assert!(snapshot.histogram(names::REQUEST_LATENCY, None).unwrap().count() >= 1);
            // both answered: nothing left in the channel, scheduler idle
            assert_eq!(snapshot.gauge(names::QUEUE_DEPTH), Some(0.0));
        }
        let text = snapshot.render_prometheus();
        assert!(text.contains(names::STAGE_DURATION));
        assert!(text.contains(names::QUEUE_DEPTH));
        assert!(text.contains(names::ARITHMETIC_INTENSITY));
        scheduler.join();
    }

    #[test]
    fn gauges_return_to_zero_after_a_scheduler_panic() {
        use crate::metrics::names;

        let panicking: fn(&Graph) -> u64 = |_| panic!("forced solve-path panic");
        let svc = service(GramServiceConfig::default()).with_content_hasher(panicking);
        let scheduler = GramScheduler::spawn(svc, SchedulerConfig::default());
        let registry = scheduler.telemetry();
        let client = scheduler.client();

        client.submit(dataset(1, 167).pop().unwrap()).unwrap();
        let propagated = catch_unwind(AssertUnwindSafe(move || scheduler.join()));
        assert!(propagated.is_err(), "the scheduler panic was swallowed");
        // the busy tracker and queue accounting are RAII/drain balanced:
        // the unwinding drain cycle cannot leave either gauge raised
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauge(names::SCHEDULER_BUSY), Some(0.0));
        assert_eq!(snapshot.gauge(names::QUEUE_DEPTH), Some(0.0));
    }
}
