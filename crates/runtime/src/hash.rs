//! Content hashing of graphs for the pair-entry cache.
//!
//! The streaming Gram service keys cached kernel values by the *content* of
//! the two structures, not by their submission order, so resubmitting a
//! structure the service has already seen costs no solve. The hash is
//! FNV-1a over the full graph content — topology, weights, labels and
//! random-walk probabilities — with float payloads hashed by their exact
//! bit patterns (two graphs hash equal iff every `f32` is bitwise equal,
//! which is the same condition under which the solver produces identical
//! systems).

use mgk_graph::{AtomLabel, BondLabel, Element, Graph, Unlabeled};

/// Incremental FNV-1a 64-bit hasher (no `std::hash::Hasher` detour so the
/// byte stream is fully specified and stable across platforms).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorb a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Types whose content can be absorbed into the structure hash.
///
/// Implemented for the label types the workspace's datasets use; downstream
/// label types implement it in one line by forwarding their fields.
pub trait ContentHash {
    /// Absorb this value's content into `h`.
    fn content_hash(&self, h: &mut Fnv1a);
}

impl ContentHash for Unlabeled {
    fn content_hash(&self, _h: &mut Fnv1a) {}
}

macro_rules! impl_content_hash_int {
    ($($t:ty),*) => {$(
        impl ContentHash for $t {
            fn content_hash(&self, h: &mut Fnv1a) {
                h.write_bytes(&self.to_le_bytes());
            }
        }
    )*};
}

impl_content_hash_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ContentHash for usize {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u64(*self as u64);
    }
}

impl ContentHash for f32 {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u32(self.to_bits());
    }
}

impl ContentHash for f64 {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_u64(self.to_bits());
    }
}

impl ContentHash for bool {
    fn content_hash(&self, h: &mut Fnv1a) {
        h.write_bytes(&[*self as u8]);
    }
}

impl ContentHash for Element {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.atomic_number().content_hash(h);
    }
}

impl ContentHash for AtomLabel {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.element.content_hash(h);
        self.charge.content_hash(h);
        self.hybridization.content_hash(h);
        self.aromatic.content_hash(h);
    }
}

impl ContentHash for BondLabel {
    fn content_hash(&self, h: &mut Fnv1a) {
        self.order.content_hash(h);
        self.conjugated.content_hash(h);
    }
}

/// Hash the full content of a graph: vertex count, labels, random-walk
/// probabilities and every undirected edge with weight and label.
///
/// Two graphs hash equal exactly when the solver would assemble identical
/// systems for them (up to 64-bit hash collisions), so the streaming
/// service may substitute a cached kernel value for a fresh solve.
pub fn graph_content_hash<V: ContentHash, E: ContentHash>(g: &Graph<V, E>) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(g.num_vertices() as u64);
    for label in g.vertex_labels() {
        label.content_hash(&mut h);
    }
    for &p in g.start_probabilities() {
        p.content_hash(&mut h);
    }
    for &q in g.stop_probabilities() {
        q.content_hash(&mut h);
    }
    h.write_u64(g.num_edges() as u64);
    for (i, j, w, label) in g.edges() {
        h.write_u32(i);
        h.write_u32(j);
        w.content_hash(&mut h);
        label.content_hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graphs_hash_equal() {
        let a = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(graph_content_hash(&a), graph_content_hash(&b));
    }

    #[test]
    fn topology_changes_the_hash() {
        let path = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let cycle = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_ne!(graph_content_hash(&path), graph_content_hash(&cycle));
    }

    #[test]
    fn stopping_probability_changes_the_hash() {
        let g = Graph::from_edge_list(3, &[(0, 1), (1, 2)]);
        let h = g.clone().with_uniform_stopping_probability(0.2);
        assert_ne!(graph_content_hash(&g), graph_content_hash(&h));
    }

    #[test]
    fn vertex_count_changes_the_hash() {
        let small = Graph::from_edge_list(3, &[(0, 1)]);
        let large = Graph::from_edge_list(4, &[(0, 1)]);
        assert_ne!(graph_content_hash(&small), graph_content_hash(&large));
    }

    #[test]
    fn fnv_is_deterministic() {
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::new();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), Fnv1a::new().finish());
    }
}
