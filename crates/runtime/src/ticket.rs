//! Per-request tickets: the consumer side of the scheduler's request lane.
//!
//! A [`Ticket`] is the handle a [`KernelClient`](crate::KernelClient)
//! request returns immediately; the scheduler resolves it once the pair's
//! kernel value is known (solved, answered from the cache, or failed). The
//! cell behind it is the same Mutex + Condvar discipline as the snapshot
//! watch ([`crate::watch`]): one slot, resolved exactly once, waiters
//! blocked on the condvar and woken by the resolution — and, like the
//! watch's closed-on-publisher-drop contract, a ticket can never hang:
//!
//! * The scheduler-side [`TicketResolver`] resolves
//!   [`RequestError::Closed`] **on drop** when it was never resolved
//!   explicitly — a scheduler that shuts down (or unwinds on a panic) with
//!   requests still queued closes every outstanding ticket instead of
//!   wedging its waiters.
//! * Dropping the [`Ticket`] marks the request **cancelled**; the
//!   scheduler checks the flag before starting the solve and skips the
//!   work (nobody can observe the answer anymore).
//! * An expired deadline resolves the ticket with
//!   [`RequestError::Expired`] *before* its solve starts, so a stale
//!   request never occupies the solve lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mgk_core::SolverError;

/// Why a request resolved without a kernel value.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The ticket's deadline passed before its solve started.
    Expired,
    /// The scheduler shut down (or its thread died) before answering.
    Closed,
    /// The solve itself failed (empty graph or non-convergence).
    Solver(SolverError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Expired => write!(f, "request deadline expired before the solve"),
            RequestError::Closed => write!(f, "scheduler closed before answering the request"),
            RequestError::Solver(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// The shared one-shot cell: `Mutex<Option<result>>` + Condvar, plus the
/// cancellation flag the ticket's drop raises.
#[derive(Debug)]
struct TicketCell<R> {
    state: Mutex<Option<Result<R, RequestError>>>,
    ready: Condvar,
    cancelled: AtomicBool,
}

/// The consumer handle of one request. Await it with [`wait`](Ticket::wait)
/// / [`wait_timeout`](Ticket::wait_timeout) / [`try_get`](Ticket::try_get);
/// drop it to cancel the request (a solve that has not started yet is
/// skipped).
#[derive(Debug)]
pub struct Ticket<R> {
    cell: Arc<TicketCell<R>>,
}

impl<R: Clone> Ticket<R> {
    /// The resolution, if one has arrived — never blocks.
    pub fn try_get(&self) -> Option<Result<R, RequestError>> {
        self.cell.state.lock().unwrap().clone()
    }

    /// Block until the request resolves. Cannot hang: the scheduler-side
    /// resolver closes the ticket on drop if it never answers.
    pub fn wait(&self) -> Result<R, RequestError> {
        let mut state = self.cell.state.lock().unwrap();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.cell.ready.wait(state).unwrap();
        }
    }

    /// Block until the request resolves or `timeout` elapses; `None` means
    /// the request is still pending (the ticket stays valid — wait again,
    /// poll, or drop it to cancel).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<R, RequestError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.cell.state.lock().unwrap();
        loop {
            if let Some(result) = state.as_ref() {
                return Some(result.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self.cell.ready.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if timed_out.timed_out() && state.is_none() {
                return None;
            }
        }
    }
}

impl<R> Drop for Ticket<R> {
    fn drop(&mut self) {
        // cancellation: the scheduler skips unstarted solves whose ticket
        // is gone — nobody can observe the answer
        self.cell.cancelled.store(true, Ordering::Release);
    }
}

/// The scheduler-side handle of one request: resolves the ticket exactly
/// once, and closes it ([`RequestError::Closed`]) on drop when it never
/// got answered — the no-hang guarantee of the request lane.
#[derive(Debug)]
pub struct TicketResolver<R> {
    cell: Arc<TicketCell<R>>,
    resolved: bool,
}

impl<R> TicketResolver<R> {
    /// Whether the consumer dropped its ticket (the request is cancelled
    /// and its solve can be skipped).
    pub fn is_cancelled(&self) -> bool {
        self.cell.cancelled.load(Ordering::Acquire)
    }

    /// Resolve the ticket, waking every waiter.
    pub fn resolve(mut self, result: Result<R, RequestError>) {
        self.resolved = true;
        let mut state = self.cell.state.lock().unwrap();
        debug_assert!(state.is_none(), "a ticket resolves exactly once");
        *state = Some(result);
        drop(state);
        self.cell.ready.notify_all();
    }
}

impl<R> Drop for TicketResolver<R> {
    fn drop(&mut self) {
        if self.resolved {
            return;
        }
        // poison-tolerant: this drop may run during an unwind (a solve
        // panicked mid-resolve), and panicking again here would abort the
        // process — recover the guard and still wake the waiters
        let mut state = match self.cell.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.is_none() {
            *state = Some(Err(RequestError::Closed));
        }
        drop(state);
        self.cell.ready.notify_all();
    }
}

/// Create a connected ticket/resolver pair.
pub fn ticket<R>() -> (Ticket<R>, TicketResolver<R>) {
    let cell = Arc::new(TicketCell {
        state: Mutex::new(None),
        ready: Condvar::new(),
        cancelled: AtomicBool::new(false),
    });
    (Ticket { cell: Arc::clone(&cell) }, TicketResolver { cell, resolved: false })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_wakes_a_blocked_waiter() {
        let (t, r) = ticket::<u32>();
        let waiter = std::thread::spawn(move || t.wait());
        std::thread::sleep(Duration::from_millis(10));
        r.resolve(Ok(7));
        assert_eq!(waiter.join().unwrap(), Ok(7));
    }

    #[test]
    fn try_get_is_none_until_resolved_then_repeats_the_answer() {
        let (t, r) = ticket::<u32>();
        assert!(t.try_get().is_none());
        r.resolve(Ok(3));
        assert_eq!(t.try_get(), Some(Ok(3)));
        assert_eq!(t.wait(), Ok(3), "wait after resolution returns immediately");
        assert_eq!(t.try_get(), Some(Ok(3)), "the answer is repeatable");
    }

    #[test]
    fn dropping_the_resolver_closes_the_ticket() {
        let (t, r) = ticket::<u32>();
        let waiter = std::thread::spawn(move || t.wait());
        std::thread::sleep(Duration::from_millis(10));
        drop(r);
        assert_eq!(waiter.join().unwrap(), Err(RequestError::Closed));
    }

    #[test]
    fn dropping_the_ticket_raises_the_cancellation_flag() {
        let (t, r) = ticket::<u32>();
        assert!(!r.is_cancelled());
        drop(t);
        assert!(r.is_cancelled());
        // resolving a cancelled ticket is harmless (nobody observes it)
        r.resolve(Ok(1));
    }

    #[test]
    fn wait_timeout_reports_pending_then_the_resolution() {
        let (t, r) = ticket::<u32>();
        assert_eq!(t.wait_timeout(Duration::from_millis(5)), None, "pending request times out");
        r.resolve(Err(RequestError::Expired));
        assert_eq!(
            t.wait_timeout(Duration::from_millis(5)),
            Some(Err(RequestError::Expired)),
            "a resolved ticket answers within the timeout"
        );
    }
}
