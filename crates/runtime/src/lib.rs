//! `mgk-runtime` — the long-lived serving layer of the workspace: a
//! persistent worker-pool runtime plus a streaming Gram service.
//!
//! The paper's premise is throughput — Gram matrices over many graph pairs,
//! fast enough to feed downstream learning. Batch computation
//! ([`GramEngine`](mgk_core::GramEngine)) covers one-shot experiments; this
//! crate adds the two pieces a long-running service needs:
//!
//! * **[`Pool`]** — the persistent work-stealing worker pool every parallel
//!   region in the workspace executes on. Workers are spawned once and
//!   parked while idle; `par_iter`/`par_chunks` calls (the rayon-shim
//!   surface used by `mgk-core`, `mgk-reorder` and the baselines) submit
//!   index ranges to it instead of spawning scoped threads per call. The
//!   implementation lives in the rayon shim (`rayon::pool`) — the lowest
//!   layer of the workspace DAG, so the shim itself can route through it —
//!   and is re-exported here as the runtime's pool layer.
//! * **[`GramService`]** — a streaming Gram matrix: structures are
//!   submitted incrementally, only new row/column blocks are solved,
//!   entries are cached by collision-hardened content key in an
//!   LRU-bounded [`PairCache`] (O(1) eviction), appended pairs warm-start
//!   PCG from the best converged donor of equal shape, and a bounded
//!   pending queue applies backpressure to producers.
//! * **[`GramScheduler`]** — the service on a dedicated background thread:
//!   producers submit through a cheap [`GramClient`] over a bounded
//!   command channel (microsecond submissions, blocking-or-try
//!   backpressure), consumers follow a versioned [`SnapshotWatch`] whose
//!   epoch bumps once per completed flush — publication is lazy *and*
//!   O(1) ([`SnapshotSource`] `Arc`-shares the triangle copy-on-write), so
//!   the O(n²) dense snapshot is built on the first observation of an
//!   epoch and never for unwatched ones — and
//!   [`join`](GramScheduler::join) drains gracefully while propagating
//!   solve panics.
//! * **[`KernelClient`]** — the request lane on the same scheduler thread:
//!   `request(pair)` returns a [`Ticket`] immediately and resolves it to a
//!   typed `KernelResult<T>` (f32 serving or f64 end-to-end). Duplicate
//!   in-flight requests coalesce onto one solve, already-solved pairs are
//!   answered from the [`PairCache`] without touching the solve lane, and
//!   expired or dropped tickets are skipped before their solve starts —
//!   tickets can never hang ([`RequestError::Closed`] on shutdown).
//! * **[`GramCluster`]** — the sharded serving plane: K schedulers behind
//!   a content-hash router. Structures route by their own content
//!   identity, request pairs by normalized [`PairKey`] (both orientations
//!   land on one shard, so coalescing and symmetric cache answers survive
//!   sharding), per-shard watches merge into a summed cluster epoch, and
//!   per-shard telemetry registries aggregate into one scrape surface with
//!   a `shard="k"` label on every metric. `K = 1` behaves exactly like the
//!   plain scheduler.
//! * **Durability plane** — attach a per-service
//!   [`PairStore`](mgk_store::PairStore) via
//!   [`GramScheduler::spawn_durable`] (or
//!   [`GramCluster::spawn_durable`], one store directory per shard):
//!   every solved pair is appended to a checksummed write-ahead log off
//!   the solve path, epoch-boundary snapshots capture the Arc-shared
//!   triangle plus the full pair cache through the O(1) copy-on-write
//!   [`SnapshotSource`], and a restart replays snapshot + WAL tail back
//!   into the [`PairCache`] so warm requests answer without re-solving.
//!   A torn final record (crash mid-append) is tolerated and counted;
//!   checksum mismatches and format-version skew refuse recovery with a
//!   typed [`StoreError`](mgk_store::StoreError).
//! * **Telemetry plane** — both lanes record into the service's
//!   [`RuntimeMetrics`] hub (an `mgk-telemetry` registry): stage-latency
//!   histograms for intake → queue wait → drain/group → preparation →
//!   solve → cache/donor fold → publish, a queue-depth gauge, live
//!   bytes/flops traffic with a running arithmetic-intensity gauge, and
//!   every [`ServiceStats`] counter. Scrape it via
//!   [`GramScheduler::telemetry`]/[`KernelClient::telemetry`] and render
//!   with `TelemetrySnapshot::render_prometheus`/`render_json`; every
//!   answered `KernelResult` also carries a per-ticket `StageBreakdown`.
//!
//! ```
//! use mgk_runtime::{GramService, GramServiceConfig};
//! use mgk_core::{MarginalizedKernelSolver, SolverConfig};
//! use mgk_graph::Graph;
//!
//! let mut service = GramService::new(
//!     MarginalizedKernelSolver::unlabeled(SolverConfig::default()),
//!     GramServiceConfig::default(),
//! );
//! let path = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
//! let cycle = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! service.submit(path).unwrap();
//! service.submit(cycle).unwrap();
//! let first = service.snapshot();
//! assert_eq!(first.num_graphs, 2);
//!
//! // extend the matrix: only the new row/column block is solved
//! let square = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
//! service.submit(square).unwrap();
//! let second = service.snapshot();
//! assert_eq!(second.num_graphs, 3);
//! // existing entries are unchanged
//! assert_eq!(second.get(0, 1), first.get(0, 1));
//! ```

pub mod cache;
pub mod cluster;
pub mod hash;
pub mod metrics;
pub mod persist;
pub mod scheduler;
pub mod service;
pub mod ticket;
pub mod watch;

pub use cache::{CachedEntry, NodalCache, PairCache, PairKey, PairSide, ReorderCache};
pub use cluster::{
    shard_of_key, shard_of_side, ClusterBarrierReply, ClusterClient, ClusterConfig,
    ClusterKernelClient, ClusterSnapshot, ClusterTelemetry, ClusterWatch, GramCluster,
};
pub use hash::{graph_content_hash, ContentHash, Fnv1a};
pub use metrics::RuntimeMetrics;
pub use persist::{DurabilityConfig, RecoveryReport};
pub use rayon::pool::Pool;
pub use scheduler::{
    BarrierReply, GramClient, GramScheduler, KernelClient, RequestScalar, SchedulerConfig,
    SchedulerError,
};
pub use service::{
    GramService, GramServiceConfig, GramServiceError, GramSnapshot, PreparedPair, ServiceStats,
    SnapshotSource, StructureId,
};
pub use ticket::{RequestError, Ticket};
pub use watch::{
    snapshot_channel, snapshot_channel_counted, SnapshotPublisher, SnapshotWatch,
    VersionedSnapshot, WatchClosed,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reexport_is_the_global_pool() {
        // the runtime's pool layer IS the pool the rayon shim executes on
        let pool: &'static Pool = Pool::global();
        assert_eq!(pool.max_parallelism(), rayon::current_num_threads());
    }
}
