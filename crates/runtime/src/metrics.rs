//! The runtime's typed telemetry hub: every counter, gauge and stage
//! histogram the serving stack records, pre-registered in one
//! [`MetricsRegistry`] and held as cached lock-free handles.
//!
//! One hub is created per [`GramService`](crate::GramService); the
//! scheduler and its clients share it (handles are `Arc`-backed, cloning
//! is cheap and clones observe the same cells). [`ServiceStats`]
//! (and every legacy getter such as `SnapshotWatch::snapshot_builds`) is
//! now a thin view assembled from these cells — one capture path, no
//! parallel bookkeeping.

use std::sync::Arc;

use mgk_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, TrafficTotals};

/// Metric names exported by the serving stack, kept in one place so tests,
/// docs and exposition consumers agree on the vocabulary.
pub mod names {
    /// Structures admitted (counter).
    pub const ADMITTED: &str = "mgk_structures_admitted_total";
    /// Flush-lane pair solves executed (counter).
    pub const JOBS_EXECUTED: &str = "mgk_pair_solves_total";
    /// Flush-lane pairs served from the cache (counter).
    pub const CACHE_HITS: &str = "mgk_cache_hits_total";
    /// Solves that started from a donated warm-start guess (counter).
    pub const WARM_STARTED: &str = "mgk_warm_started_solves_total";
    /// Total PCG iterations across executed solves (counter).
    pub const TOTAL_ITERATIONS: &str = "mgk_solver_iterations_total";
    /// Solves that failed to converge (counter).
    pub const FAILURES: &str = "mgk_solve_failures_total";
    /// Parallel flush batches scheduled (counter).
    pub const BATCHES: &str = "mgk_solve_batches_total";
    /// Observed content-hash collisions (counter).
    pub const HASH_COLLISIONS: &str = "mgk_hash_collisions_total";
    /// Copy-on-write clones of the snapshot triangle (counter).
    pub const TRIANGLE_COPIES: &str = "mgk_triangle_copies_total";
    /// Request-lane solves executed (counter).
    pub const REQUEST_SOLVES: &str = "mgk_request_solves_total";
    /// Requests answered straight from the pair cache (counter).
    pub const REQUEST_CACHE_ANSWERS: &str = "mgk_request_cache_answers_total";
    /// Tickets coalesced onto an in-flight request (counter).
    pub const REQUESTS_COALESCED: &str = "mgk_requests_coalesced_total";
    /// Tickets expired, split by `phase="queue"` / `phase="pre_solve"`
    /// (labeled counter).
    pub const REQUESTS_EXPIRED: &str = "mgk_requests_expired_total";
    /// Tickets cancelled before their solve started (counter).
    pub const REQUESTS_CANCELLED: &str = "mgk_requests_cancelled_total";
    /// Reorder-cache hits (counter).
    pub const REORDER_HITS: &str = "mgk_reorder_hits_total";
    /// Reorder-cache misses (counter).
    pub const REORDER_MISSES: &str = "mgk_reorder_misses_total";
    /// Snapshots materialized by the watch (counter).
    pub const SNAPSHOT_BUILDS: &str = "mgk_snapshot_builds_total";
    /// Nodal side-cache hits (counter).
    pub const NODAL_HITS: &str = "mgk_nodal_cache_hits_total";
    /// Nodal side-cache misses (counter).
    pub const NODAL_MISSES: &str = "mgk_nodal_cache_misses_total";
    /// Records appended to the write-ahead log (counter).
    pub const STORE_APPENDS: &str = "mgk_store_appends_total";
    /// Bytes appended to the write-ahead log (counter).
    pub const STORE_BYTES: &str = "mgk_store_bytes_total";
    /// `fsync` calls issued by the store (counter).
    pub const STORE_FSYNCS: &str = "mgk_store_fsyncs_total";
    /// Entries replayed into the cache at recovery (counter).
    pub const STORE_REPLAYED: &str = "mgk_store_replayed_total";
    /// Torn final WAL records skipped at recovery (counter).
    pub const STORE_TORN_TAIL: &str = "mgk_store_torn_tail_total";
    /// Global-memory bytes moved by solves (counter).
    pub const TRAFFIC_BYTES: &str = "mgk_traffic_global_bytes_total";
    /// Floating-point operations executed by solves (counter).
    pub const TRAFFIC_FLOPS: &str = "mgk_traffic_flops_total";
    /// Running flops/byte of everything solved so far (gauge) — the
    /// serving hot path's live Roofline x-coordinate.
    pub const ARITHMETIC_INTENSITY: &str = "mgk_arithmetic_intensity_flops_per_byte";
    /// Commands sitting in the scheduler's channel (gauge).
    pub const QUEUE_DEPTH: &str = "mgk_scheduler_queue_depth";
    /// 1 while the scheduler thread is processing a drain cycle (gauge;
    /// RAII-tracked so panics cannot leave it raised).
    pub const SCHEDULER_BUSY: &str = "mgk_scheduler_busy";
    /// Per-stage pipeline latencies, labeled `stage="..."` (histograms).
    pub const STAGE_DURATION: &str = "mgk_stage_duration_seconds";
    /// End-to-end per-ticket latency, intake to resolution (histogram).
    pub const REQUEST_LATENCY: &str = "mgk_request_latency_seconds";
}

/// Typed handles into one service's registry. See the module docs.
#[derive(Debug, Clone)]
pub struct RuntimeMetrics {
    registry: Arc<MetricsRegistry>,
    /// Structures admitted.
    pub admitted: Counter,
    /// Flush-lane pair solves executed.
    pub jobs_executed: Counter,
    /// Flush-lane cache hits.
    pub cache_hits: Counter,
    /// Warm-started solves.
    pub warm_started: Counter,
    /// Total PCG iterations.
    pub total_iterations: Counter,
    /// Non-converged solves.
    pub failures: Counter,
    /// Flush batches scheduled.
    pub batches: Counter,
    /// Observed content-hash collisions.
    pub hash_collisions: Counter,
    /// Copy-on-write triangle clones.
    pub triangle_copies: Counter,
    /// Request-lane solves.
    pub request_solves: Counter,
    /// Request-lane cache answers.
    pub request_cache_answers: Counter,
    /// Coalesced tickets.
    pub requests_coalesced: Counter,
    /// Tickets whose deadline passed while they sat in the command queue.
    pub requests_expired_in_queue: Counter,
    /// Tickets whose deadline passed after drain but before their group's
    /// solve started (earlier groups of the same drain were solving).
    pub requests_expired_pre_solve: Counter,
    /// Cancelled tickets.
    pub requests_cancelled: Counter,
    /// Reorder-cache hits.
    pub reorder_hits: Counter,
    /// Reorder-cache misses.
    pub reorder_misses: Counter,
    /// Snapshots materialized by the watch.
    pub snapshot_builds: Counter,
    /// Nodal side-cache hits.
    pub nodal_hits: Counter,
    /// Nodal side-cache misses.
    pub nodal_misses: Counter,
    /// WAL records appended by the attached store.
    pub store_appends: Counter,
    /// WAL bytes appended by the attached store.
    pub store_bytes: Counter,
    /// `fsync` calls the attached store issued.
    pub store_fsyncs: Counter,
    /// Entries replayed into the cache when a store was attached.
    pub store_replayed: Counter,
    /// Torn final WAL records skipped at recovery.
    pub store_torn_tail: Counter,
    /// Live bytes/flops totals and the derived intensity gauge.
    pub traffic: TrafficTotals,
    /// Commands currently in the scheduler channel.
    pub queue_depth: Gauge,
    /// 1 while the scheduler thread is inside a drain cycle.
    pub scheduler_busy: Gauge,
    /// Queue-wait stage latencies (intake → drain).
    pub stage_queue_wait: Histogram,
    /// Drain/group stage latencies (one span per request drain).
    pub stage_drain: Histogram,
    /// PBR-preparation stage latencies.
    pub stage_prepare: Histogram,
    /// Solve stage latencies.
    pub stage_solve: Histogram,
    /// Cache/donor fold stage latencies.
    pub stage_fold: Histogram,
    /// Snapshot publication stage latencies.
    pub stage_publish: Histogram,
    /// Durability boundary latencies (epoch mark + fsync + snapshot).
    pub stage_persist: Histogram,
    /// End-to-end per-ticket latencies.
    pub request_latency: Histogram,
}

impl RuntimeMetrics {
    /// A fresh hub over a fresh registry, with every metric registered.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let stage = |s| registry.histogram_labeled(names::STAGE_DURATION, Some(("stage", s)));
        RuntimeMetrics {
            admitted: registry.counter(names::ADMITTED),
            jobs_executed: registry.counter(names::JOBS_EXECUTED),
            cache_hits: registry.counter(names::CACHE_HITS),
            warm_started: registry.counter(names::WARM_STARTED),
            total_iterations: registry.counter(names::TOTAL_ITERATIONS),
            failures: registry.counter(names::FAILURES),
            batches: registry.counter(names::BATCHES),
            hash_collisions: registry.counter(names::HASH_COLLISIONS),
            triangle_copies: registry.counter(names::TRIANGLE_COPIES),
            request_solves: registry.counter(names::REQUEST_SOLVES),
            request_cache_answers: registry.counter(names::REQUEST_CACHE_ANSWERS),
            requests_coalesced: registry.counter(names::REQUESTS_COALESCED),
            requests_expired_in_queue: registry
                .counter_labeled(names::REQUESTS_EXPIRED, Some(("phase", "queue"))),
            requests_expired_pre_solve: registry
                .counter_labeled(names::REQUESTS_EXPIRED, Some(("phase", "pre_solve"))),
            requests_cancelled: registry.counter(names::REQUESTS_CANCELLED),
            reorder_hits: registry.counter(names::REORDER_HITS),
            reorder_misses: registry.counter(names::REORDER_MISSES),
            snapshot_builds: registry.counter(names::SNAPSHOT_BUILDS),
            nodal_hits: registry.counter(names::NODAL_HITS),
            nodal_misses: registry.counter(names::NODAL_MISSES),
            store_appends: registry.counter(names::STORE_APPENDS),
            store_bytes: registry.counter(names::STORE_BYTES),
            store_fsyncs: registry.counter(names::STORE_FSYNCS),
            store_replayed: registry.counter(names::STORE_REPLAYED),
            store_torn_tail: registry.counter(names::STORE_TORN_TAIL),
            traffic: TrafficTotals::new(
                registry.counter(names::TRAFFIC_BYTES),
                registry.counter(names::TRAFFIC_FLOPS),
                registry.gauge(names::ARITHMETIC_INTENSITY),
            ),
            queue_depth: registry.gauge(names::QUEUE_DEPTH),
            scheduler_busy: registry.gauge(names::SCHEDULER_BUSY),
            stage_queue_wait: stage("queue_wait"),
            stage_drain: stage("drain_group"),
            stage_prepare: stage("prepare"),
            stage_solve: stage("solve"),
            stage_fold: stage("cache_fold"),
            stage_publish: stage("publish"),
            stage_persist: stage("persist"),
            request_latency: registry.histogram(names::REQUEST_LATENCY),
            registry,
        }
    }

    /// The registry behind these handles — the scrape/pull surface.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// A *fresh* hub (new registry, new cells) seeded at this hub's
    /// current values. Cloning a `GramService` snapshots its full state for
    /// replay; its telemetry forks the same way, so the clone and the
    /// original never double-count each other's future activity.
    pub fn fork(&self) -> RuntimeMetrics {
        let fresh = RuntimeMetrics::new();
        for (new, old) in fresh.counter_cells().into_iter().zip(self.counter_cells()) {
            new.add(old.value());
        }
        fresh.traffic.bytes.add(self.traffic.bytes.value());
        fresh.traffic.flops.add(self.traffic.flops.value());
        fresh.traffic.intensity.set(self.traffic.intensity.value());
        fresh.queue_depth.set(self.queue_depth.value());
        fresh.scheduler_busy.set(self.scheduler_busy.value());
        for (new, old) in fresh.histogram_cells().into_iter().zip(self.histogram_cells()) {
            new.absorb(&old.snapshot());
        }
        fresh
    }

    fn counter_cells(&self) -> [&Counter; 25] {
        [
            &self.admitted,
            &self.jobs_executed,
            &self.cache_hits,
            &self.warm_started,
            &self.total_iterations,
            &self.failures,
            &self.batches,
            &self.hash_collisions,
            &self.triangle_copies,
            &self.request_solves,
            &self.request_cache_answers,
            &self.requests_coalesced,
            &self.requests_expired_in_queue,
            &self.requests_expired_pre_solve,
            &self.requests_cancelled,
            &self.reorder_hits,
            &self.reorder_misses,
            &self.snapshot_builds,
            &self.nodal_hits,
            &self.nodal_misses,
            &self.store_appends,
            &self.store_bytes,
            &self.store_fsyncs,
            &self.store_replayed,
            &self.store_torn_tail,
        ]
    }

    fn histogram_cells(&self) -> [&Histogram; 8] {
        [
            &self.stage_queue_wait,
            &self.stage_drain,
            &self.stage_prepare,
            &self.stage_solve,
            &self.stage_fold,
            &self.stage_publish,
            &self.stage_persist,
            &self.request_latency,
        ]
    }
}

impl Default for RuntimeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forked_hubs_do_not_share_cells() {
        let hub = RuntimeMetrics::new();
        hub.jobs_executed.add(5);
        hub.stage_solve.record(1_000);
        hub.traffic.record(100, 300);
        let fork = hub.fork();
        if mgk_telemetry::COMPILED {
            assert_eq!(fork.jobs_executed.value(), 5);
            assert_eq!(fork.stage_solve.snapshot().count(), 1);
            assert!((fork.traffic.intensity.value() - 3.0).abs() < 1e-12);
        }
        fork.jobs_executed.inc();
        hub.jobs_executed.add(10);
        if mgk_telemetry::COMPILED {
            assert_eq!(fork.jobs_executed.value(), 6);
            assert_eq!(hub.jobs_executed.value(), 15);
        }
    }

    #[test]
    fn shared_clones_do_share_cells() {
        let hub = RuntimeMetrics::new();
        let shared = hub.clone();
        shared.cache_hits.add(3);
        hub.cache_hits.add(4);
        if mgk_telemetry::COMPILED {
            assert_eq!(hub.cache_hits.value(), 7);
            assert_eq!(hub.registry().snapshot().counter(names::CACHE_HITS), Some(7));
        }
    }
}
