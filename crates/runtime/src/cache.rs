//! The LRU-bounded pair-entry cache of the streaming Gram service.
//!
//! Every converged pair solve yields a kernel value; keeping it turns a
//! resubmitted structure into a pure lookup. (Converged nodal solution
//! vectors are retained separately, in the service's bounded warm-start
//! donor pool — caching them per pair would pin megabytes of write-only
//! data.) The cache is bounded — at capacity the least-recently-used entry
//! is evicted — so a long-running service holds memory constant no matter
//! how many structures stream through.

use std::collections::HashMap;

/// Order-normalized cache key: the content hashes of the two structures of
/// a pair. The kernel is symmetric, so `(a, b)` and `(b, a)` map to the
/// same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// Smaller of the two content hashes.
    pub lo: u64,
    /// Larger of the two content hashes.
    pub hi: u64,
}

impl PairKey {
    /// Build the normalized key of an unordered pair.
    pub fn new(a: u64, b: u64) -> Self {
        if a <= b {
            PairKey { lo: a, hi: b }
        } else {
            PairKey { lo: b, hi: a }
        }
    }
}

/// One cached pair solve.
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The (unnormalized) kernel value `K(G_i, G_j)`.
    pub value: f32,
    /// PCG iterations the original solve took.
    pub iterations: usize,
}

/// LRU-bounded map from [`PairKey`] to [`CachedEntry`].
///
/// Recency is tracked with a monotone tick per access; eviction scans for
/// the minimum, which is O(len) but only runs on insertion at capacity —
/// negligible next to the PCG solve that produced the entry.
#[derive(Debug, Clone)]
pub struct PairCache {
    capacity: usize,
    map: HashMap<PairKey, (u64, CachedEntry)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PairCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        PairCache { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a pair, refreshing its recency on a hit.
    pub fn get(&mut self, key: PairKey) -> Option<&CachedEntry> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some((stamp, entry)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(&*entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a pair entry, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: PairKey, entry: CachedEntry) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: f32) -> CachedEntry {
        CachedEntry { value: v, iterations: 1 }
    }

    #[test]
    fn keys_are_order_normalized() {
        assert_eq!(PairKey::new(3, 7), PairKey::new(7, 3));
        assert_ne!(PairKey::new(3, 7), PairKey::new(3, 8));
    }

    #[test]
    fn get_returns_inserted_entries_and_counts_hits() {
        let mut c = PairCache::new(4);
        c.insert(PairKey::new(1, 2), entry(0.5));
        assert_eq!(c.get(PairKey::new(2, 1)).unwrap().value, 0.5);
        assert!(c.get(PairKey::new(9, 9)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let mut c = PairCache::new(2);
        c.insert(PairKey::new(1, 1), entry(1.0));
        c.insert(PairKey::new(2, 2), entry(2.0));
        // touch (1,1) so (2,2) becomes the LRU victim
        assert!(c.get(PairKey::new(1, 1)).is_some());
        c.insert(PairKey::new(3, 3), entry(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(PairKey::new(1, 1)).is_some());
        assert!(c.get(PairKey::new(2, 2)).is_none(), "LRU entry should have been evicted");
        assert!(c.get(PairKey::new(3, 3)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = PairCache::new(2);
        c.insert(PairKey::new(1, 1), entry(1.0));
        c.insert(PairKey::new(2, 2), entry(2.0));
        c.insert(PairKey::new(1, 1), entry(1.5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(PairKey::new(1, 1)).unwrap().value, 1.5);
        assert!(c.get(PairKey::new(2, 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PairCache::new(0);
        c.insert(PairKey::new(1, 1), entry(1.0));
        assert!(c.is_empty());
        assert!(c.get(PairKey::new(1, 1)).is_none());
    }
}
