//! The LRU-bounded pair-entry cache of the streaming Gram service.
//!
//! Every converged pair solve yields a kernel value; keeping it turns a
//! resubmitted structure into a pure lookup. (Converged nodal solution
//! vectors are retained separately, in the service's bounded warm-start
//! donor pool — caching them per pair would pin megabytes of write-only
//! data.) The cache is bounded — at capacity the least-recently-used entry
//! is evicted — so a long-running service holds memory constant no matter
//! how many structures stream through.
//!
//! Two properties matter at serving scale:
//!
//! * **Keys are collision-hardened.** A [`PairKey`] is built from two
//!   [`PairSide`]s, each carrying the structure's 64-bit content hash *and*
//!   cheap discriminators (vertex count, edge count). A content-hash
//!   collision between structurally different graphs therefore no longer
//!   aliases their cache entries unless the graphs also agree on both
//!   counts — and the service counts observed hash collisions in
//!   `ServiceStats::hash_collisions` so the residual risk is monitorable.
//! * **Eviction is O(1) amortized.** Recency is tracked by a tick-ordered
//!   queue with lazy deletion ([`Recency`]) instead of a full-map minimum
//!   scan, so inserting at capacity does not degrade linearly with the
//!   cache size.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use mgk_linalg::Precision;

/// One side of a pair key: the structure's content hash plus cheap
/// discriminators that keep a 64-bit hash collision from aliasing two
/// structurally different graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairSide {
    /// FNV-1a content hash of the structure
    /// ([`graph_content_hash`](crate::hash::graph_content_hash)).
    pub hash: u64,
    /// Vertex count of the structure.
    pub vertices: u32,
    /// Undirected edge count of the structure.
    pub edges: u32,
}

impl PairSide {
    /// Bundle a content hash with its discriminators.
    pub fn new(hash: u64, vertices: u32, edges: u32) -> Self {
        PairSide { hash, vertices, edges }
    }
}

/// Order-normalized cache key: the content identities of the two structures
/// of a pair. The kernel is symmetric, so `(a, b)` and `(b, a)` map to the
/// same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// Lexicographically smaller side.
    pub lo: PairSide,
    /// Lexicographically larger side.
    pub hi: PairSide,
}

impl PairKey {
    /// Build the normalized key of an unordered pair.
    pub fn new(a: PairSide, b: PairSide) -> Self {
        if a <= b {
            PairKey { lo: a, hi: b }
        } else {
            PairKey { lo: b, hi: a }
        }
    }
}

/// One cached pair solve.
///
/// The entry keeps enough of the original [`KernelResult`] to answer a
/// request without re-solving: the serving (`f32`) value, the
/// full-precision contraction, the precision the solve ran at — a typed
/// `f64` request is only answered from entries whose solve actually
/// carried `f64` accuracy — and the convergence metadata.
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The (unnormalized) kernel value `K(G_i, G_j)`.
    pub value: f32,
    /// The full-precision (`f64`-contracted) kernel value of the original
    /// solve.
    pub value_f64: f64,
    /// The [`Precision`] the original solve ran at.
    pub precision: Precision,
    /// Final relative residual of the original solve.
    pub relative_residual: f64,
    /// PCG iterations the original solve took.
    pub iterations: usize,
}

impl CachedEntry {
    /// Whether this entry can answer a request at `wanted` without losing
    /// accuracy: `f32` requests accept any entry, `f64`/refined requests
    /// only entries whose solve carried `f64` accuracy.
    pub fn answers(&self, wanted: Precision) -> bool {
        match wanted {
            Precision::F32 => true,
            Precision::F64 | Precision::Refined => self.precision != Precision::F32,
        }
    }
}

/// Tick-ordered recency index with lazy deletion.
///
/// Every touch appends `(tick, key)` to a queue; the authoritative stamp per
/// key lives with the owner's map. Popping the LRU key skips queue entries
/// whose tick no longer matches the owner's current stamp (the key was
/// touched again later, or removed). The queue is compacted whenever it
/// grows past twice the live-entry count, so the whole structure is O(1)
/// amortized per operation and O(live) in memory.
#[derive(Debug, Clone, Default)]
pub(crate) struct Recency<K> {
    queue: VecDeque<(u64, K)>,
    tick: u64,
}

impl<K: Copy + Eq + Hash> Recency<K> {
    pub(crate) fn new() -> Self {
        Recency { queue: VecDeque::new(), tick: 0 }
    }

    /// Record an access to `key`, returning the stamp the owner must store
    /// as the key's current tick.
    pub(crate) fn touch(&mut self, key: K) -> u64 {
        self.tick += 1;
        self.queue.push_back((self.tick, key));
        self.tick
    }

    /// Pop the least-recently-touched live key. `current` reports the
    /// owner's stamp for a key (`None` once removed); stale queue entries
    /// are discarded on the way.
    pub(crate) fn pop_lru(&mut self, current: impl Fn(&K) -> Option<u64>) -> Option<K> {
        while let Some((tick, key)) = self.queue.pop_front() {
            if current(&key) == Some(tick) {
                return Some(key);
            }
        }
        None
    }

    /// Drop stale queue entries once they outnumber the live ones, keeping
    /// queue memory proportional to `live`.
    pub(crate) fn compact_if_bloated(&mut self, live: usize, current: impl Fn(&K) -> Option<u64>) {
        if self.queue.len() > live.saturating_mul(2) + 16 {
            self.queue.retain(|(tick, key)| current(key) == Some(*tick));
        }
    }
}

/// LRU-bounded map from [`PairKey`] to [`CachedEntry`].
///
/// Recency is tracked with a tick-ordered queue with lazy deletion
/// ([`Recency`]); both lookup refresh and eviction at capacity are O(1)
/// amortized, so a serving-scale cache does not degrade with its size.
#[derive(Debug, Clone)]
pub struct PairCache {
    capacity: usize,
    map: HashMap<PairKey, (u64, CachedEntry)>,
    recency: Recency<PairKey>,
    hits: u64,
    misses: u64,
}

impl PairCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        PairCache { capacity, map: HashMap::new(), recency: Recency::new(), hits: 0, misses: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a pair, refreshing its recency on a hit.
    pub fn get(&mut self, key: PairKey) -> Option<&CachedEntry> {
        match self.map.get_mut(&key) {
            Some((stamp, _)) => {
                *stamp = self.recency.touch(key);
                self.hits += 1;
                let map = &self.map;
                self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
                // reborrow: compaction only touched the recency queue
                self.map.get(&key).map(|(_, entry)| entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a pair entry, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&mut self, key: PairKey, entry: CachedEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let map = &self.map;
            if let Some(victim) = self.recency.pop_lru(|k| map.get(k).map(|(t, _)| *t)) {
                self.map.remove(&victim);
            }
        }
        let stamp = self.recency.touch(key);
        self.map.insert(key, (stamp, entry));
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
    }

    /// Every live entry, in no particular order — the snapshot capture
    /// path. Does not refresh recency: capturing a snapshot must not
    /// perturb eviction order.
    pub fn iter(&self) -> impl Iterator<Item = (&PairKey, &CachedEntry)> {
        self.map.iter().map(|(key, (_, entry))| (key, entry))
    }
}

/// LRU-bounded map from one structure's content identity ([`PairSide`]) to
/// its prepared (reordered) form.
///
/// The per-structure preprocessing of the serving path — pseudo-BFS
/// reordering, stopping-probability overrides — is a pure function of the
/// structure's content, so its output can be shared across every lane that
/// re-encounters the structure: batch admission, the request lane, and
/// (because reordering permutes indices identically regardless of the
/// scalar type of the eventual solve) both solve precisions. Keys are the
/// same collision-hardened `(content hash, vertices, edges)` triple the
/// [`PairCache`] builds its [`PairKey`]s from; a content-hash collision
/// between structurally different graphs cannot alias their prepared forms
/// unless the graphs also agree on both counts.
///
/// The value type is generic so the cache stays free of graph types; the
/// service stores `Arc<Graph<V, E>>` and hands out clones of the pointer.
/// Hit/miss counters live with the owner
/// (`ServiceStats::reorder_hits`/`reorder_misses`), not here.
#[derive(Debug, Clone)]
pub struct ReorderCache<T> {
    capacity: usize,
    map: HashMap<PairSide, (u64, T)>,
    recency: Recency<PairSide>,
}

impl<T> ReorderCache<T> {
    /// An empty cache holding at most `capacity` prepared structures
    /// (0 disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        ReorderCache { capacity, map: HashMap::new(), recency: Recency::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a structure's prepared form, refreshing its recency on a
    /// hit.
    pub fn get(&mut self, key: PairSide) -> Option<&T> {
        let stamp_entry = self.map.get_mut(&key)?;
        stamp_entry.0 = self.recency.touch(key);
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
        // reborrow: compaction only touched the recency queue
        self.map.get(&key).map(|(_, prepared)| prepared)
    }

    /// Insert (or refresh) a prepared structure, evicting the
    /// least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: PairSide, prepared: T) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let map = &self.map;
            if let Some(victim) = self.recency.pop_lru(|k| map.get(k).map(|(t, _)| *t)) {
                self.map.remove(&victim);
            }
        }
        let stamp = self.recency.touch(key);
        self.map.insert(key, (stamp, prepared));
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
    }
}

/// LRU-bounded side-cache of converged nodal solution vectors, keyed by the
/// *ordered* (orientation-sensitive) pair of structure identities.
///
/// The [`PairCache`] answers a repeated request with the kernel value alone;
/// callers that asked for the per-vertex-pair solution vector still paid a
/// full re-solve. This cache keeps the most recent nodal vectors so an `f32`
/// cache answer can carry its vector too. Orientation matters: the nodal
/// vector of `(a, b)` is the transpose-permutation of `(b, a)`'s, and
/// transposing on the fly would cost more than a miss — so `(a, b)` and
/// `(b, a)` are distinct keys and the mirrored orientation simply misses.
///
/// Values are `Arc`-shared with the donor pool, so a cached vector costs one
/// pointer, not a copy, until a request actually claims it. Hit/miss
/// counters live with the owner (`ServiceStats::nodal_hits`/`nodal_misses`),
/// not here.
#[derive(Debug, Clone)]
pub struct NodalCache {
    capacity: usize,
    map: HashMap<OrderedSides, (u64, SharedNodal)>,
    recency: Recency<OrderedSides>,
}

/// An *ordered* (orientation-sensitive) pair of structure identities — the
/// key space of the [`NodalCache`].
pub type OrderedSides = (PairSide, PairSide);

/// A nodal solution vector `Arc`-shared between the [`NodalCache`] and the
/// donor pool.
pub type SharedNodal = std::sync::Arc<Vec<f32>>;

impl NodalCache {
    /// An empty cache holding at most `capacity` nodal vectors (0 disables
    /// the side-cache entirely).
    pub fn new(capacity: usize) -> Self {
        NodalCache { capacity, map: HashMap::new(), recency: Recency::new() }
    }

    /// Number of live vectors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of vectors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up the nodal vector of an *ordered* pair, refreshing its
    /// recency on a hit.
    pub fn get(&mut self, key: OrderedSides) -> Option<&SharedNodal> {
        let stamp_entry = self.map.get_mut(&key)?;
        stamp_entry.0 = self.recency.touch(key);
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
        // reborrow: compaction only touched the recency queue
        self.map.get(&key).map(|(_, nodal)| nodal)
    }

    /// Insert (or refresh) an ordered pair's nodal vector, evicting the
    /// least-recently-used vector when at capacity.
    pub fn insert(&mut self, key: OrderedSides, nodal: SharedNodal) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let map = &self.map;
            if let Some(victim) = self.recency.pop_lru(|k| map.get(k).map(|(t, _)| *t)) {
                self.map.remove(&victim);
            }
        }
        let stamp = self.recency.touch(key);
        self.map.insert(key, (stamp, nodal));
        let map = &self.map;
        self.recency.compact_if_bloated(map.len(), |k| map.get(k).map(|(t, _)| *t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(h: u64) -> PairSide {
        PairSide::new(h, 4, 4)
    }

    fn key(a: u64, b: u64) -> PairKey {
        PairKey::new(side(a), side(b))
    }

    fn entry(v: f32) -> CachedEntry {
        CachedEntry {
            value: v,
            value_f64: v as f64,
            precision: Precision::F32,
            relative_residual: 0.0,
            iterations: 1,
        }
    }

    #[test]
    fn keys_are_order_normalized() {
        assert_eq!(key(3, 7), key(7, 3));
        assert_ne!(key(3, 7), key(3, 8));
    }

    #[test]
    fn discriminators_separate_hash_collisions() {
        // two distinct structures forced onto one content hash: different
        // vertex/edge counts must map to different keys, so a 64-bit hash
        // collision can no longer serve the wrong kernel value
        let path = PairSide::new(0xDEAD, 4, 3);
        let cycle = PairSide::new(0xDEAD, 4, 4);
        assert_ne!(PairKey::new(path, path), PairKey::new(cycle, cycle));

        let mut c = PairCache::new(8);
        c.insert(PairKey::new(path, path), entry(1.0));
        assert!(
            c.get(PairKey::new(cycle, cycle)).is_none(),
            "hash-colliding structure must miss, not alias"
        );
        c.insert(PairKey::new(cycle, cycle), entry(2.0));
        assert_eq!(c.get(PairKey::new(path, path)).unwrap().value, 1.0);
        assert_eq!(c.get(PairKey::new(cycle, cycle)).unwrap().value, 2.0);
    }

    #[test]
    fn precision_gating_blocks_narrow_entries_from_wide_requests() {
        let narrow = entry(1.0);
        let wide = CachedEntry { precision: Precision::F64, ..entry(1.0) };
        let refined = CachedEntry { precision: Precision::Refined, ..entry(1.0) };
        assert!(narrow.answers(Precision::F32));
        assert!(!narrow.answers(Precision::F64));
        assert!(wide.answers(Precision::F32) && wide.answers(Precision::F64));
        assert!(refined.answers(Precision::F64), "refined entries carry f64 accuracy");
    }

    #[test]
    fn get_returns_inserted_entries_and_counts_hits() {
        let mut c = PairCache::new(4);
        c.insert(key(1, 2), entry(0.5));
        assert_eq!(c.get(key(2, 1)).unwrap().value, 0.5);
        assert!(c.get(key(9, 9)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let mut c = PairCache::new(2);
        c.insert(key(1, 1), entry(1.0));
        c.insert(key(2, 2), entry(2.0));
        // touch (1,1) so (2,2) becomes the LRU victim
        assert!(c.get(key(1, 1)).is_some());
        c.insert(key(3, 3), entry(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(key(1, 1)).is_some());
        assert!(c.get(key(2, 2)).is_none(), "LRU entry should have been evicted");
        assert!(c.get(key(3, 3)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = PairCache::new(2);
        c.insert(key(1, 1), entry(1.0));
        c.insert(key(2, 2), entry(2.0));
        c.insert(key(1, 1), entry(1.5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(key(1, 1)).unwrap().value, 1.5);
        assert!(c.get(key(2, 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PairCache::new(0);
        c.insert(key(1, 1), entry(1.0));
        assert!(c.is_empty());
        assert!(c.get(key(1, 1)).is_none());
    }

    #[test]
    fn eviction_order_survives_heavy_refresh_traffic() {
        // hammer a small cache with refreshes so the lazy queue accumulates
        // stale entries and compaction kicks in; LRU order must still hold
        let mut c = PairCache::new(4);
        for k in 0..4 {
            c.insert(key(k, k), entry(k as f32));
        }
        for _ in 0..1000 {
            for k in 1..4 {
                assert!(c.get(key(k, k)).is_some());
            }
        }
        // key 0 is now by far the coldest
        c.insert(key(9, 9), entry(9.0));
        assert_eq!(c.len(), 4);
        assert!(c.get(key(0, 0)).is_none(), "coldest entry should have been evicted");
        for k in 1..4 {
            assert!(c.get(key(k, k)).is_some());
        }
        assert!(c.get(key(9, 9)).is_some());
    }

    #[test]
    fn queue_memory_stays_proportional_to_live_entries() {
        let mut c = PairCache::new(8);
        for k in 0..8 {
            c.insert(key(k, k), entry(0.0));
        }
        for _ in 0..10_000 {
            for k in 0..8 {
                assert!(c.get(key(k, k)).is_some());
            }
        }
        assert!(
            c.recency.queue.len() <= 8 * 2 + 16,
            "lazy queue must be compacted: {} entries for 8 live keys",
            c.recency.queue.len()
        );
    }

    #[test]
    fn reorder_cache_evicts_least_recently_used_at_capacity() {
        let mut c: ReorderCache<u32> = ReorderCache::new(2);
        c.insert(side(1), 10);
        c.insert(side(2), 20);
        assert_eq!(c.get(side(1)), Some(&10)); // refresh 1: LRU is now 2
        c.insert(side(3), 30);
        assert_eq!(c.len(), 2, "capacity bound violated");
        assert_eq!(c.get(side(2)), None, "2 was the LRU entry");
        assert_eq!(c.get(side(1)), Some(&10));
        assert_eq!(c.get(side(3)), Some(&30));
    }

    #[test]
    fn reorder_cache_with_zero_capacity_stores_nothing() {
        let mut c: ReorderCache<u32> = ReorderCache::new(0);
        c.insert(side(1), 10);
        assert!(c.is_empty());
        assert_eq!(c.get(side(1)), None);
    }

    #[test]
    fn nodal_cache_is_orientation_sensitive() {
        let mut c = NodalCache::new(4);
        let forward = (side(1), side(2));
        let mirrored = (side(2), side(1));
        c.insert(forward, std::sync::Arc::new(vec![1.0, 2.0]));
        assert!(c.get(mirrored).is_none(), "mirrored orientation must miss, not transpose");
        assert_eq!(c.get(forward).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn nodal_cache_evicts_least_recently_used_at_capacity() {
        let mut c = NodalCache::new(2);
        c.insert((side(1), side(1)), std::sync::Arc::new(vec![1.0]));
        c.insert((side(2), side(2)), std::sync::Arc::new(vec![2.0]));
        assert!(c.get((side(1), side(1))).is_some()); // refresh 1: LRU is now 2
        c.insert((side(3), side(3)), std::sync::Arc::new(vec![3.0]));
        assert_eq!(c.len(), 2, "capacity bound violated");
        assert!(c.get((side(2), side(2))).is_none(), "2 was the LRU entry");
        assert!(c.get((side(1), side(1))).is_some());
        assert!(c.get((side(3), side(3))).is_some());
    }

    #[test]
    fn nodal_cache_with_zero_capacity_stores_nothing() {
        let mut c = NodalCache::new(0);
        c.insert((side(1), side(2)), std::sync::Arc::new(vec![1.0]));
        assert!(c.is_empty());
        assert!(c.get((side(1), side(2))).is_none());
    }

    #[test]
    fn pair_cache_iter_walks_live_entries_without_touching_recency() {
        let mut c = PairCache::new(2);
        c.insert(key(1, 1), entry(1.0));
        c.insert(key(2, 2), entry(2.0));
        assert_eq!(c.iter().count(), 2);
        let tick_before = c.recency.tick;
        let total: f32 = c.iter().map(|(_, e)| e.value).sum();
        assert_eq!(total, 3.0);
        assert_eq!(c.recency.tick, tick_before, "iteration must not perturb LRU order");
    }

    #[test]
    fn recency_pop_lru_skips_stale_entries() {
        let mut r: Recency<u32> = Recency::new();
        let mut stamps: HashMap<u32, u64> = HashMap::new();
        for k in [1u32, 2, 3] {
            stamps.insert(k, r.touch(k));
        }
        stamps.insert(1, r.touch(1)); // refresh 1: its first queue entry is stale
        stamps.remove(&2); // remove 2 entirely
        let victim = r.pop_lru(|k| stamps.get(k).copied());
        assert_eq!(victim, Some(3), "3 is the least-recently-touched live key");
    }
}
