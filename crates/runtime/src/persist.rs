//! The durability bridge: conversions between the runtime's in-memory
//! serving types and `mgk-store`'s plain on-disk records, plus the
//! configuration of an attached store.
//!
//! `mgk-store` sits at the bottom of the workspace DAG and knows nothing
//! about graphs, solvers or precisions — its records carry plain integers
//! and floats. This module is the only place the two vocabularies meet:
//! [`PairKey`] ↔ [`StoredKey`], [`CachedEntry`] ↔ [`StoredEntry`], and the
//! [`Precision`] tag ↔ its stable one-byte encoding. Keeping the mapping
//! here (and nowhere else) means in-memory refactors cannot silently
//! change the on-disk format.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

use mgk_linalg::Precision;
use mgk_store::{FsyncPolicy, StoredEntry, StoredKey, StoredSide};

use crate::cache::{CachedEntry, PairKey, PairSide};

/// Configuration of a service's attached [`PairStore`](mgk_store::PairStore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// The store directory (created if missing). A cluster derives one
    /// subdirectory per shard from it — see [`for_shard`](Self::for_shard).
    pub dir: PathBuf,
    /// When appended records are forced onto stable storage. The default,
    /// [`FsyncPolicy::EveryFlush`], syncs once per flush/request boundary —
    /// one `fsync` amortized over the whole drained batch, issued on a
    /// dedicated group-commit thread ([`WalSyncer`]) so the sync's I/O
    /// wait never serializes with the next drain's solves.
    pub fsync: FsyncPolicy,
    /// Admitting flushes between epoch snapshots; after each snapshot the
    /// log is truncated, bounding replay work at recovery. `0` disables
    /// cadence snapshots — only the final snapshot at graceful shutdown is
    /// written.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability at `dir` with the default policy: fsync per flush
    /// boundary, a snapshot every 8 admitting flushes.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), fsync: FsyncPolicy::EveryFlush, snapshot_every: 8 }
    }

    /// Replace the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replace the snapshot cadence (admitting flushes per snapshot; 0 =
    /// final snapshot only).
    pub fn with_snapshot_every(mut self, snapshot_every: u64) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// The per-shard derivation a [`GramCluster`](crate::GramCluster)
    /// uses: shard `k` persists under `<dir>/shard-<k>`, same policy.
    /// Content-hash routing is deterministic across restarts, so a
    /// restarted cluster of the same shard count finds each shard's pairs
    /// in exactly the store that shard recovers from.
    pub fn for_shard(&self, shard: usize) -> Self {
        DurabilityConfig {
            dir: self.dir.join(format!("shard-{shard}")),
            fsync: self.fsync,
            snapshot_every: self.snapshot_every,
        }
    }
}

/// What recovery found when a store was attached — the runtime-level view
/// of [`mgk_store::Recovery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch the service resumes from (0 on a cold start).
    pub epoch: u64,
    /// Pair entries replayed into the [`PairCache`](crate::PairCache)
    /// (snapshot entries plus the log tail).
    pub replayed: usize,
    /// Member graphs of the recovered snapshot's triangle (0 if none).
    pub snapshot_graphs: usize,
    /// The log's final record was torn by a crash mid-append and skipped.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// Whether anything was recovered (a warm start).
    pub fn is_warm(&self) -> bool {
        self.epoch > 0 || self.replayed > 0 || self.snapshot_graphs > 0
    }
}

/// The attached store plus its snapshot-cadence bookkeeping, owned by the
/// service. Intentionally *not* `Clone`: a cloned service must never share
/// (or duplicate) a live file handle — `GramService::clone` detaches.
#[derive(Debug)]
pub(crate) struct ServiceStore {
    pub(crate) store: mgk_store::PairStore,
    /// The group-commit thread boundary syncs run on under
    /// [`FsyncPolicy::EveryFlush`]; `None` for the synchronous policies.
    pub(crate) syncer: Option<WalSyncer>,
    /// Admitting flushes per snapshot (0 = final snapshot only).
    pub(crate) snapshot_every: u64,
    /// Admitting flushes since the last snapshot.
    pub(crate) flushes_since_snapshot: u64,
}

/// Outcome of scheduling a boundary sync on the group-commit thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncScheduled {
    /// A sync was newly scheduled (counts toward `store_fsyncs`).
    Scheduled,
    /// A sync was already pending; this boundary coalesced into it.
    Coalesced,
    /// The sync thread died on an I/O error — detach the store.
    Failed,
}

/// The group-commit thread of [`FsyncPolicy::EveryFlush`]: boundary
/// `fsync`s run here, off the scheduler thread, so a drain's sync I/O
/// wait overlaps the next drain's solves instead of serializing with
/// them. A boundary arriving while a sync is still pending coalesces
/// into it (classic group commit) — a crash loses at most the records
/// between the last *completed* sync and the crash, all re-solvable.
/// Dropping the syncer joins the thread after its final sync, so a
/// graceful shutdown never exits with unsynced records.
#[derive(Debug)]
pub(crate) struct WalSyncer {
    tx: Option<SyncSender<()>>,
    thread: Option<JoinHandle<()>>,
}

impl WalSyncer {
    /// Spawn the sync thread over a second handle to the WAL file
    /// ([`PairStore::sync_handle`](mgk_store::PairStore::sync_handle)):
    /// both handles share one file description, so `sync_data` here
    /// flushes everything the owning thread appended before the call.
    pub(crate) fn spawn(file: std::fs::File) -> WalSyncer {
        let (tx, rx) = sync_channel::<()>(1);
        let thread = std::thread::Builder::new()
            .name("mgk-wal-sync".into())
            .spawn(move || {
                while rx.recv().is_ok() {
                    if file.sync_data().is_err() {
                        // die; the owner sees Failed at the next boundary
                        return;
                    }
                }
            })
            .expect("spawning the WAL sync thread");
        WalSyncer { tx: Some(tx), thread: Some(thread) }
    }

    /// Request a sync of everything appended so far. Never blocks: the
    /// channel holds one pending token, so at most one sync is queued
    /// behind the running one and later boundaries coalesce.
    pub(crate) fn schedule(&self) -> SyncScheduled {
        match self.tx.as_ref().expect("sender lives until drop").try_send(()) {
            Ok(()) => SyncScheduled::Scheduled,
            Err(TrySendError::Full(())) => SyncScheduled::Coalesced,
            Err(TrySendError::Disconnected(())) => SyncScheduled::Failed,
        }
    }
}

impl Drop for WalSyncer {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The store directory of an attached store.
pub(crate) fn store_dir(store: &ServiceStore) -> &Path {
    store.store.dir()
}

/// Stable one-byte encoding of the [`Precision`] tag. Part of the on-disk
/// format: changing an assignment requires a `FORMAT_VERSION` bump.
pub(crate) fn precision_to_byte(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::F64 => 1,
        Precision::Refined => 2,
    }
}

/// Inverse of [`precision_to_byte`]. An unknown byte (a future format's
/// tag) decodes to [`Precision::F32`] — the conservative reading: an f32
/// entry answers only f32 requests, so a misunderstood tag can never
/// over-promise accuracy.
pub(crate) fn precision_from_byte(b: u8) -> Precision {
    match b {
        1 => Precision::F64,
        2 => Precision::Refined,
        _ => Precision::F32,
    }
}

pub(crate) fn side_to_stored(side: &PairSide) -> StoredSide {
    StoredSide::new(side.hash, side.vertices, side.edges)
}

pub(crate) fn side_from_stored(side: &StoredSide) -> PairSide {
    PairSide::new(side.hash, side.vertices, side.edges)
}

/// A cache entry (under its normalized key) as the WAL/snapshot record it
/// persists to.
pub(crate) fn entry_to_stored(key: &PairKey, entry: &CachedEntry) -> StoredEntry {
    StoredEntry {
        key: StoredKey::new(side_to_stored(&key.lo), side_to_stored(&key.hi)),
        precision: precision_to_byte(entry.precision),
        value: entry.value,
        value_f64: entry.value_f64,
        relative_residual: entry.relative_residual,
        iterations: entry.iterations as u64,
    }
}

/// A recovered record as the cache entry it restores.
pub(crate) fn entry_from_stored(stored: &StoredEntry) -> (PairKey, CachedEntry) {
    (
        PairKey::new(side_from_stored(&stored.key.lo), side_from_stored(&stored.key.hi)),
        CachedEntry {
            value: stored.value,
            value_f64: stored.value_f64,
            precision: precision_from_byte(stored.precision),
            relative_residual: stored.relative_residual,
            iterations: stored.iterations as usize,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_roundtrip_through_the_stored_form() {
        let key = PairKey::new(PairSide::new(7, 10, 12), PairSide::new(3, 11, 13));
        for precision in [Precision::F32, Precision::F64, Precision::Refined] {
            let entry = CachedEntry {
                value: 0.75,
                value_f64: 0.750000001,
                precision,
                relative_residual: 2.5e-9,
                iterations: 17,
            };
            let stored = entry_to_stored(&key, &entry);
            let (back_key, back) = entry_from_stored(&stored);
            assert_eq!(back_key, key);
            assert_eq!(back.value.to_bits(), entry.value.to_bits());
            assert_eq!(back.value_f64.to_bits(), entry.value_f64.to_bits());
            assert_eq!(back.precision, entry.precision);
            assert_eq!(back.iterations, entry.iterations);
        }
    }

    #[test]
    fn unknown_precision_bytes_decode_conservatively() {
        assert_eq!(precision_from_byte(250), Precision::F32);
        for p in [Precision::F32, Precision::F64, Precision::Refined] {
            assert_eq!(precision_from_byte(precision_to_byte(p)), p);
        }
    }

    #[test]
    fn shard_directories_derive_deterministically() {
        let config = DurabilityConfig::new("/tmp/example");
        assert_eq!(config.for_shard(2).dir, Path::new("/tmp/example/shard-2"));
        assert_eq!(config.for_shard(2), config.for_shard(2));
        assert_eq!(config.for_shard(0).fsync, config.fsync);
    }
}
