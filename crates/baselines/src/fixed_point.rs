//! GraphKernels-style fixed-point solver.
//!
//! Instead of solving the symmetric system of Eq. (14), this baseline
//! iterates the defining recurrence of the marginalized kernel directly
//! (Eq. 9 / Appendix A):
//!
//! ```text
//! r ← q× + (P× ∘ E×) V× r,        P× = D×⁻¹ A×
//! K  = p×ᵀ V× r
//! ```
//!
//! Each iteration adds the contribution of one more random-walk step, so a
//! truncation of the iteration is exactly the truncated path-sum of
//! Eq. (4). This doubles as an algorithm-independent reference for the
//! random-walk semantics of the kernel.
//!
//! Since the operator/solver surface became scalar-generic, the baseline
//! owns **no iteration loop of its own**: the sweep matrix
//! `M = P× ∘ E× · V×` is a [`LinearOperator<f64>`] ([`WalkSweepOperator`])
//! over the shared `f32` operands, and the recurrence is driven by the
//! workspace-wide [`mgk_linalg::fixed_point_counted`] driver — the same
//! operator surface the PCG solvers apply through, instantiated at the
//! `f64` validation precision the monotone partial sums of Eq. (4)
//! require.

use crate::DenseSystem;
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_linalg::{fixed_point_counted, LinearOperator, SolveOptions, TrafficCounters};

/// Result of a fixed-point evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointResult {
    /// The kernel value.
    pub value: f64,
    /// Number of iterations (random-walk steps) accumulated.
    pub iterations: usize,
    /// Whether the iteration converged before hitting the budget.
    pub converged: bool,
}

/// The sweep matrix `M = D×⁻¹ (A× ∘ E×) V×` of the fixed-point recurrence,
/// as a [`LinearOperator<f64>`] over the explicit `f32` operands of a
/// [`DenseSystem`].
///
/// One application is one dense random-walk sweep: weight the iterate by
/// the vertex-kernel diagonal `V×`, stream the off-diagonal product matrix
/// against it, and scale each row by the inverse degree product. All
/// arithmetic runs in `f64` over the widened `f32` operands — the
/// instantiation of the workspace's mixed-precision contract that the
/// truncated path-sum semantics (monotone partial sums) need.
pub(crate) struct WalkSweepOperator<'a> {
    sys: &'a DenseSystem,
}

impl<'a> WalkSweepOperator<'a> {
    /// View the sweep matrix of an assembled dense system.
    pub(crate) fn new(sys: &'a DenseSystem) -> Self {
        WalkSweepOperator { sys }
    }
}

impl LinearOperator<f64> for WalkSweepOperator<'_> {
    fn dim(&self) -> usize {
        self.sys.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.apply_counted(x, y, &mut TrafficCounters::new());
    }

    fn apply_counted(&self, x: &[f64], y: &mut [f64], counters: &mut TrafficCounters) {
        let dim = self.sys.dim;
        // w = V× x (element-wise)
        let w: Vec<f64> =
            x.iter().zip(&self.sys.vertex_product).map(|(a, &b)| a * b as f64).collect();
        for (i, slot) in y.iter_mut().enumerate() {
            let row = &self.sys.off_diagonal[i * dim..(i + 1) * dim];
            let mut acc = 0.0;
            for (&a, b) in row.iter().zip(&w) {
                acc += a as f64 * b;
            }
            *slot = acc / self.sys.degree_product[i] as f64;
        }
        // one dense sweep: stream the f32 matrix and diagonals once, write
        // the f64 sweep result back; the vertex weighting, the row
        // products and the inverse-degree scaling are the arithmetic
        counters.global_load_bytes += (dim * dim + 2 * dim) as u64 * 4 + dim as u64 * 8;
        counters.global_store_bytes += dim as u64 * 8;
        counters.flops += (2 * dim * dim + 2 * dim) as u64;
    }
}

/// Single-threaded fixed-point / power-iteration baseline in the style of
/// the GraphKernels package.
///
/// The iteration is configured through the shared [`SolveOptions`] surface
/// (`tolerance` is the relative-change threshold on the solution vector,
/// `max_iterations` the maximum walk length) and reports memory traffic
/// through the same [`TrafficCounters`] accounting as every other solver.
/// Unlike the CG-based solvers it is not a Krylov method — the truncated
/// path-sum semantics (Eq. 4) it certifies require exactly monotone
/// partial sums — so it drives
/// [`mgk_linalg::fixed_point_counted`], the Richardson-iteration side of
/// the shared generic surface, with the sweep matrix as a
/// [`LinearOperator<f64>`].
#[derive(Debug, Clone)]
pub struct FixedPointSolver<KV, KE> {
    vertex_kernel: KV,
    edge_kernel: KE,
    /// Options of the fixed-point iteration (shared [`SolveOptions`]
    /// surface).
    pub options: SolveOptions,
}

impl<KV, KE> FixedPointSolver<KV, KE> {
    /// Create the baseline from a pair of base kernels.
    pub fn new(vertex_kernel: KV, edge_kernel: KE) -> Self {
        FixedPointSolver {
            vertex_kernel,
            edge_kernel,
            options: SolveOptions { max_iterations: 10_000, tolerance: 1e-10 },
        }
    }

    /// Evaluate the kernel between two graphs.
    pub fn kernel<V, E>(&self, g1: &Graph<V, E>, g2: &Graph<V, E>) -> FixedPointResult
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        self.kernel_counted(g1, g2, &mut TrafficCounters::new())
    }

    /// [`kernel`](Self::kernel) with memory-traffic accounting: the sweep
    /// operator and the driver's vector recurrences add to `counters`
    /// through the same instrumented surface as every other solver.
    pub fn kernel_counted<V, E>(
        &self,
        g1: &Graph<V, E>,
        g2: &Graph<V, E>,
        counters: &mut TrafficCounters,
    ) -> FixedPointResult
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let sys = DenseSystem::assemble(g1, g2, &self.vertex_kernel, &self.edge_kernel);
        // r ← q× + M r from r = q×, on the shared fixed-point driver
        let b: Vec<f64> = sys.stop_product.iter().map(|&q| q as f64).collect();
        let operator = WalkSweepOperator::new(&sys);
        let (r, info) = fixed_point_counted(&operator, &b, &self.options, counters);
        // K = p×ᵀ V× r
        let value = sys
            .start_product
            .iter()
            .zip(&sys.vertex_product)
            .zip(&r)
            .map(|((&p, &v), &ri)| p as f64 * v as f64 * ri)
            .sum();
        FixedPointResult { value, iterations: info.iterations, converged: info.converged }
    }

    /// Evaluate the kernel truncated at a fixed maximum walk length — the
    /// explicit path-sum of Eq. (4) up to `max_length` steps.
    pub fn truncated_kernel<V, E>(
        &self,
        g1: &Graph<V, E>,
        g2: &Graph<V, E>,
        max_length: usize,
    ) -> f64
    where
        E: Copy + Default,
        KV: BaseKernel<V> + Clone,
        KE: BaseKernel<E> + Clone,
    {
        let mut solver = self.clone();
        solver.options = SolveOptions { max_iterations: max_length, tolerance: 0.0 };
        solver.kernel(g1, g2).value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::{Graph, GraphBuilder};
    use mgk_kernels::{KroneckerDelta, SquareExponential, UnitKernel};

    /// Verbatim copy of the seed's bespoke fixed-point loop (the
    /// implementation this baseline had before it was rewritten onto the
    /// shared generic surface), kept as the exactness oracle: the rewrite
    /// must reproduce its values *bit for bit*, not just to tolerance.
    fn seed_reference<V, E: Copy + Default>(
        vertex_kernel: &impl BaseKernel<V>,
        edge_kernel: &impl BaseKernel<E>,
        options: &SolveOptions,
        g1: &Graph<V, E>,
        g2: &Graph<V, E>,
    ) -> FixedPointResult {
        let sys = DenseSystem::assemble(g1, g2, vertex_kernel, edge_kernel);
        let dim = sys.dim;
        let mut r: Vec<f64> = sys.stop_product.iter().map(|&q| q as f64).collect();
        let mut next = vec![0.0f64; dim];
        let mut iterations = 0;
        let mut converged = false;
        while iterations < options.max_iterations {
            let w: Vec<f64> =
                r.iter().zip(&sys.vertex_product).map(|(a, &b)| a * b as f64).collect();
            for (i, slot) in next.iter_mut().enumerate() {
                let row = &sys.off_diagonal[i * dim..(i + 1) * dim];
                let mut acc = 0.0;
                for (&a, b) in row.iter().zip(&w) {
                    acc += a as f64 * b;
                }
                *slot = sys.stop_product[i] as f64 + acc / sys.degree_product[i] as f64;
            }
            iterations += 1;
            let diff: f64 = next.iter().zip(&r).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            let norm: f64 = next.iter().map(|a| a * a).sum::<f64>().sqrt();
            std::mem::swap(&mut r, &mut next);
            if diff <= options.tolerance * norm.max(1e-300) {
                converged = true;
                break;
            }
        }
        let value = sys
            .start_product
            .iter()
            .zip(&sys.vertex_product)
            .zip(&r)
            .map(|((&p, &v), &ri)| p as f64 * v as f64 * ri)
            .sum();
        FixedPointResult { value, iterations, converged }
    }

    fn seed_fixture_unlabeled() -> (Graph, Graph) {
        let g1 = Graph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let g2 = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        (g1, g2)
    }

    fn seed_fixture_labeled() -> (Graph<u8, f32>, Graph<u8, f32>) {
        let mut b1: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [1u8, 2, 3] {
            b1.add_vertex(l);
        }
        b1.add_edge(0, 1, 1.0, 0.4).unwrap();
        b1.add_edge(1, 2, 0.7, 1.2).unwrap();
        let g1 = b1.build().unwrap();
        let mut b2: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [3u8, 1] {
            b2.add_vertex(l);
        }
        b2.add_edge(0, 1, 0.9, 0.8).unwrap();
        let g2 = b2.build().unwrap();
        (g1, g2)
    }

    #[test]
    fn rewritten_solver_reproduces_the_seed_loop_exactly_unlabeled() {
        let (g1, g2) = seed_fixture_unlabeled();
        let solver = FixedPointSolver::new(UnitKernel, UnitKernel);
        for opts in [
            solver.options,
            SolveOptions { max_iterations: 1, tolerance: 0.0 },
            SolveOptions { max_iterations: 16, tolerance: 0.0 },
            SolveOptions { max_iterations: 10_000, tolerance: 1e-6 },
        ] {
            let mut s = solver.clone();
            s.options = opts;
            let got = s.kernel(&g1, &g2);
            let want = seed_reference(&UnitKernel, &UnitKernel, &opts, &g1, &g2);
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "value must be bit-identical to the seed loop under {opts:?}: {} vs {}",
                got.value,
                want.value
            );
            assert_eq!(got.iterations, want.iterations, "iteration counts diverged");
            assert_eq!(got.converged, want.converged);
        }
    }

    #[test]
    fn rewritten_solver_reproduces_the_seed_loop_exactly_labeled() {
        let (g1, g2) = seed_fixture_labeled();
        let kv = KroneckerDelta::new(0.4);
        let ke = SquareExponential::new(1.0);
        let solver = FixedPointSolver::new(kv, ke);
        let got = solver.kernel(&g1, &g2);
        let want = seed_reference(&kv, &ke, &solver.options, &g1, &g2);
        assert_eq!(got.value.to_bits(), want.value.to_bits(), "{} vs {}", got.value, want.value);
        assert_eq!(got.iterations, want.iterations);
        assert_eq!(got.converged, want.converged);
    }

    #[test]
    fn fixed_point_matches_core_solver_unlabeled() {
        let (g1, g2) = seed_fixture_unlabeled();
        let baseline = FixedPointSolver::new(UnitKernel, UnitKernel);
        let result = baseline.kernel(&g1, &g2);
        assert!(result.converged);
        let fast = MarginalizedKernelSolver::unlabeled(SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((result.value - fast).abs() / fast.abs() < 1e-4, "{} vs {fast}", result.value);
    }

    #[test]
    fn fixed_point_matches_core_solver_labeled() {
        let (g1, g2) = seed_fixture_labeled();
        let kv = KroneckerDelta::new(0.4);
        let ke = SquareExponential::new(1.0);
        let baseline = FixedPointSolver::new(kv, ke);
        let result = baseline.kernel(&g1, &g2);
        let fast = MarginalizedKernelSolver::new(kv, ke, SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((result.value - fast).abs() / fast.abs() < 1e-4, "{} vs {fast}", result.value);
    }

    #[test]
    fn truncated_walk_sum_is_monotone_and_converges_to_fixed_point() {
        let g1 = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g2 = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let baseline = FixedPointSolver::new(UnitKernel, UnitKernel);
        let full = baseline.kernel(&g1, &g2).value;
        let mut previous = 0.0;
        for len in [1usize, 2, 4, 8, 16, 64, 256, 1024] {
            let truncated = baseline.truncated_kernel(&g1, &g2, len);
            assert!(truncated >= previous - 1e-12, "walk sum should be monotone in length");
            assert!(truncated <= full + 1e-9);
            previous = truncated;
        }
        assert!((previous - full).abs() / full < 1e-6, "{previous} vs {full}");
    }

    #[test]
    fn longer_walks_matter_more_for_small_stopping_probability() {
        // with a small stopping probability the walk continues longer, so
        // truncating at length 2 misses more of the kernel mass
        let g1 = Graph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let g2 = g1.clone();
        let baseline = FixedPointSolver::new(UnitKernel, UnitKernel);
        let fraction = |q: f32| {
            let a = g1.clone().with_uniform_stopping_probability(q);
            let b = g2.clone().with_uniform_stopping_probability(q);
            baseline.truncated_kernel(&a, &b, 2) / baseline.kernel(&a, &b).value
        };
        assert!(fraction(0.5) > fraction(0.05));
    }

    #[test]
    fn sweep_operator_traffic_is_counted() {
        let (g1, g2) = seed_fixture_unlabeled();
        let baseline = FixedPointSolver::new(UnitKernel, UnitKernel);
        let mut counters = TrafficCounters::new();
        let result = baseline.kernel_counted(&g1, &g2, &mut counters);
        assert!(result.converged);
        assert!(counters.flops > 0);
        assert!(counters.global_load_bytes > 0);
        assert!(counters.global_store_bytes > 0);
    }
}
