//! Spectral-decomposition solver for the unlabeled random-walk kernel.
//!
//! Section II-C of the paper notes that spectral decomposition "delivers
//! the best performance if the edges are unlabeled or labeled with a small
//! set of distinct elements" (Vishwanathan et al., reference [5]). For the
//! unlabeled kernel of Eq. (2),
//!
//! ```text
//! K = p×ᵀ (D× − A×)⁻¹ D× q×
//! ```
//!
//! the similarity transform `S = D^{-1/2} A D^{-1/2}` (one per graph)
//! reduces the `nm × nm` inverse to two small eigendecompositions:
//!
//! ```text
//! (D× − A×)⁻¹ = D×^{-1/2} (I − S ⊗ S')⁻¹ D×^{-1/2}
//! (I − S ⊗ S')⁻¹ = (U ⊗ U') diag(1 / (1 − λ_k λ'_l)) (U ⊗ U')ᵀ
//! ```
//!
//! so the kernel becomes a double sum over the two spectra — no `nm × nm`
//! object is ever formed.

use mgk_graph::Graph;
use mgk_linalg::symmetric_eigen;

/// Spectral baseline for unlabeled graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralSolver;

impl SpectralSolver {
    /// Create the solver.
    pub fn new() -> Self {
        SpectralSolver
    }

    /// Evaluate the unlabeled random-walk kernel between two graphs,
    /// ignoring any labels they carry.
    pub fn kernel<V1, E1, V2, E2>(&self, g1: &Graph<V1, E1>, g2: &Graph<V2, E2>) -> f64 {
        let (a1, d1, p1, q1) = Self::per_graph(g1);
        let (a2, d2, p2, q2) = Self::per_graph(g2);
        let n = d1.len();
        let m = d2.len();

        // normalized adjacency S = D^{-1/2} A D^{-1/2} and its spectrum
        let normalized = |a: &[f64], d: &[f64], n: usize| -> Vec<f64> {
            let mut s = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    s[i * n + j] = a[i * n + j] / (d[i] * d[j]).sqrt();
                }
            }
            s
        };
        let e1 = symmetric_eigen(&normalized(&a1, &d1, n), n);
        let e2 = symmetric_eigen(&normalized(&a2, &d2, m), m);

        // a_k = Σ_i U_ik · p_i / sqrt(d_i);  b_k = Σ_i U_ik · q_i · sqrt(d_i)
        let project =
            |e: &mgk_linalg::SymmetricEigen, d: &[f64], p: &[f64], q: &[f64], n: usize| {
                let mut a = vec![0.0f64; n];
                let mut b = vec![0.0f64; n];
                for k in 0..n {
                    for i in 0..n {
                        let u = e.eigenvectors[i * n + k];
                        a[k] += u * p[i] / d[i].sqrt();
                        b[k] += u * q[i] * d[i].sqrt();
                    }
                }
                (a, b)
            };
        let (a_1, b_1) = project(&e1, &d1, &p1, &q1, n);
        let (a_2, b_2) = project(&e2, &d2, &p2, &q2, m);

        // K = Σ_{k,l} a1_k a2_l b1_k b2_l / (1 − λ_k λ'_l)
        let mut k_total = 0.0f64;
        for k in 0..n {
            for l in 0..m {
                let denom = 1.0 - e1.eigenvalues[k] * e2.eigenvalues[l];
                k_total += a_1[k] * a_2[l] * b_1[k] * b_2[l] / denom;
            }
        }
        k_total
    }

    fn per_graph<V, E>(g: &Graph<V, E>) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = g.num_vertices();
        let a: Vec<f64> = g.adjacency_dense().iter().map(|&x| x as f64).collect();
        let d: Vec<f64> = g.laplacian_degrees().iter().map(|&x| x as f64).collect();
        let p: Vec<f64> = g.start_probabilities().iter().map(|&x| x as f64).collect();
        let q: Vec<f64> = g.stop_probabilities().iter().map(|&x| x as f64).collect();
        let _ = n;
        (a, d, p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplicitSolver;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::{generators, Graph};
    use mgk_kernels::UnitKernel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spectral_matches_explicit_solver() {
        let g1 =
            Graph::from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let g2 = Graph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let spectral = SpectralSolver::new().kernel(&g1, &g2);
        let explicit = ExplicitSolver::new(UnitKernel, UnitKernel).kernel(&g1, &g2);
        assert!((spectral - explicit).abs() / explicit.abs() < 1e-6, "{spectral} vs {explicit}");
    }

    #[test]
    fn spectral_matches_core_solver_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        let solver = MarginalizedKernelSolver::unlabeled(SolverConfig::default());
        for _ in 0..3 {
            let g1 = generators::newman_watts_strogatz(15, 2, 0.2, &mut rng);
            let g2 = generators::barabasi_albert(12, 2, &mut rng);
            let spectral = SpectralSolver::new().kernel(&g1, &g2);
            let fast = solver.kernel(&g1, &g2).unwrap().value as f64;
            assert!((spectral - fast).abs() / fast.abs() < 1e-4, "{spectral} vs {fast}");
        }
    }

    #[test]
    fn spectral_self_kernel_is_positive() {
        let g = Graph::from_edge_list(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
        assert!(SpectralSolver::new().kernel(&g, &g) > 0.0);
    }
}
