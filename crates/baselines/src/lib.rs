//! CPU reference solvers for the marginalized graph kernel.
//!
//! The paper compares its GPU solver against two existing CPU packages,
//! GraKeL and GraphKernels (Section VII-B, Fig. 10). Neither package is
//! available here, so this crate re-implements the *algorithms those
//! packages use*, deliberately in the simple explicit style they employ:
//!
//! * [`ExplicitSolver`] — "GraKeL-style": materialize the full tensor-
//!   product system as a dense matrix and run a conjugate gradient
//!   iteration on it, single-threaded.
//! * [`FixedPointSolver`] — "GraphKernels-style": the fixed-point /
//!   truncated-path-sum iteration of Eq. (9), also on explicit dense
//!   operands, single-threaded. Doubles as an independent reference for
//!   the random-walk semantics of the kernel (Appendix A).
//! * [`SpectralSolver`] — the spectral-decomposition method for unlabeled
//!   graphs mentioned in Section II-C (Vishwanathan et al.), which
//!   diagonalizes the normalized adjacency matrices of the two graphs
//!   separately.
//!
//! All three produce the same kernel values as `mgk-core` (up to solver
//! tolerance) and are used as the comparison targets of the Fig. 10
//! benchmark. The iterative baselines run through the same
//! [`mgk_linalg::LinearOperator`] + [`mgk_linalg::SolveOptions`] surface as
//! the on-the-fly solvers, with memory traffic threaded through
//! [`mgk_linalg::TrafficCounters`] rather than tracked ad hoc.

pub mod explicit;
pub mod fixed_point;
pub mod spectral;

pub use explicit::ExplicitSolver;
pub use fixed_point::FixedPointSolver;
pub use spectral::SpectralSolver;

use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_linalg::{DenseMatrix, DenseOperator, DiagonalOperator, ScaledSum};

/// Dense tensor-product operands shared by the explicit baselines.
///
/// The operands are stored in `f32`, the scalar of the workspace-wide
/// [`mgk_linalg::LinearOperator`] surface, so the baselines solve through
/// exactly the same operator and [`mgk_linalg::SolveOptions`] plumbing as
/// the on-the-fly solvers of `mgk-core`.
pub(crate) struct DenseSystem {
    /// `n · m`.
    pub dim: usize,
    /// Off-diagonal product matrix `A× ∘ E×` (row-major, `dim × dim`).
    pub off_diagonal: Vec<f32>,
    /// `d ⊗ d'`.
    pub degree_product: Vec<f32>,
    /// `v κ⊗ v'`.
    pub vertex_product: Vec<f32>,
    /// `p ⊗ p'`.
    pub start_product: Vec<f32>,
    /// `q ⊗ q'`.
    pub stop_product: Vec<f32>,
}

impl DenseSystem {
    /// Assemble the explicit dense operands for a graph pair.
    pub(crate) fn assemble<V, E, KV, KE>(
        g1: &Graph<V, E>,
        g2: &Graph<V, E>,
        vertex_kernel: &KV,
        edge_kernel: &KE,
    ) -> Self
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let (n, m) = (g1.num_vertices(), g2.num_vertices());
        let dim = n * m;
        let a1 = g1.adjacency_dense();
        let a2 = g2.adjacency_dense();
        let e1 = g1.edge_labels_dense(E::default());
        let e2 = g2.edge_labels_dense(E::default());
        let mut off_diagonal = vec![0.0f32; dim * dim];
        for i in 0..n {
            for j in 0..n {
                let w1 = a1[i * n + j];
                if w1 == 0.0 {
                    continue;
                }
                for ip in 0..m {
                    for jp in 0..m {
                        let w2 = a2[ip * m + jp];
                        if w2 == 0.0 {
                            continue;
                        }
                        let ke = edge_kernel.eval(&e1[i * n + j], &e2[ip * m + jp]);
                        off_diagonal[(i * m + ip) * dim + j * m + jp] = w1 * w2 * ke;
                    }
                }
            }
        }
        let kron = |a: &[f32], b: &[f32]| -> Vec<f32> {
            let mut out = Vec::with_capacity(a.len() * b.len());
            for &x in a {
                for &y in b {
                    out.push(x * y);
                }
            }
            out
        };
        let degree_product = kron(&g1.laplacian_degrees(), &g2.laplacian_degrees());
        let mut vertex_product = Vec::with_capacity(dim);
        for va in g1.vertex_labels() {
            for vb in g2.vertex_labels() {
                vertex_product.push(vertex_kernel.eval(va, vb));
            }
        }
        let start_product = kron(g1.start_probabilities(), g2.start_probabilities());
        let stop_product = kron(g1.stop_probabilities(), g2.stop_probabilities());
        DenseSystem {
            dim,
            off_diagonal,
            degree_product,
            vertex_product,
            start_product,
            stop_product,
        }
    }

    /// The full system matrix `D× V×⁻¹ − A× ∘ E×` as a
    /// [`mgk_linalg::LinearOperator`]: the diagonal part minus the explicit
    /// dense off-diagonal product.
    pub(crate) fn system_operator(&self) -> ScaledSum<DiagonalOperator, DenseOperator> {
        let diag: Vec<f32> =
            self.degree_product.iter().zip(&self.vertex_product).map(|(&d, &v)| d / v).collect();
        let off = DenseMatrix::from_row_major(self.dim, self.dim, self.off_diagonal.clone());
        ScaledSum::new(1.0, DiagonalOperator::new(diag), -1.0, DenseOperator(off))
    }

    /// The Jacobi preconditioner `M⁻¹ = V× D×⁻¹` of the system.
    pub(crate) fn preconditioner(&self) -> DiagonalOperator {
        let diag: Vec<f32> =
            self.degree_product.iter().zip(&self.vertex_product).map(|(&d, &v)| v / d).collect();
        DiagonalOperator::new(diag)
    }

    /// The right-hand side `D× q×`.
    pub(crate) fn rhs(&self) -> Vec<f32> {
        self.degree_product.iter().zip(&self.stop_product).map(|(&d, &q)| d * q).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::Graph;
    use mgk_kernels::UnitKernel;

    #[test]
    fn dense_system_shapes_and_symmetry() {
        let g1 = Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::from_edge_list(3, &[(0, 1), (1, 2)]);
        let sys = DenseSystem::assemble(&g1, &g2, &UnitKernel, &UnitKernel);
        assert_eq!(sys.dim, 12);
        assert_eq!(sys.off_diagonal.len(), 144);
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(sys.off_diagonal[i * 12 + j], sys.off_diagonal[j * 12 + i]);
            }
        }
        assert!(sys.degree_product.iter().all(|&d| d > 0.0));
        assert!(sys.vertex_product.iter().all(|&v| v == 1.0));
    }
}
