//! GraKeL-style explicit solver: materialize the tensor-product system and
//! run a (Jacobi-preconditioned) conjugate gradient iteration on it.
//!
//! The solver goes through the same [`mgk_linalg::LinearOperator`] +
//! [`SolveOptions`] surface as the on-the-fly solvers of `mgk-core`: the
//! materialized system becomes a `ScaledSum<DiagonalOperator,
//! DenseOperator>` and [`mgk_linalg::pcg_counted`] runs the iteration, so
//! the baseline's memory traffic is measured with exactly the same
//! [`TrafficCounters`] accounting as everything else (which is what the
//! Fig. 10 comparison wants to contrast).

use crate::DenseSystem;
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;
use mgk_linalg::{pcg_counted, vecops, ConvergenceInfo, SolveOptions, TrafficCounters};

/// Explicit, single-threaded CPU baseline in the style of GraKeL's random
/// walk kernel implementation.
#[derive(Debug, Clone)]
pub struct ExplicitSolver<KV, KE> {
    vertex_kernel: KV,
    edge_kernel: KE,
    /// Options of the CG iteration (shared [`SolveOptions`] surface).
    pub options: SolveOptions,
}

impl<KV, KE> ExplicitSolver<KV, KE> {
    /// Create the baseline from a pair of base kernels.
    pub fn new(vertex_kernel: KV, edge_kernel: KE) -> Self {
        ExplicitSolver {
            vertex_kernel,
            edge_kernel,
            options: SolveOptions { max_iterations: 1000, tolerance: 1e-6 },
        }
    }

    /// Evaluate the kernel between two graphs.
    pub fn kernel<V, E>(&self, g1: &Graph<V, E>, g2: &Graph<V, E>) -> f64
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        self.kernel_counted(g1, g2, &mut TrafficCounters::new()).0
    }

    /// [`kernel`](Self::kernel) with memory-traffic accounting and the CG
    /// convergence outcome: the dense operator and preconditioner
    /// applications of every iteration add to `counters`, and the returned
    /// [`ConvergenceInfo`] tells the caller whether the tolerance was
    /// actually reached (a baseline value from a stalled iteration should
    /// not be used as a reference).
    pub fn kernel_counted<V, E>(
        &self,
        g1: &Graph<V, E>,
        g2: &Graph<V, E>,
        counters: &mut TrafficCounters,
    ) -> (f64, ConvergenceInfo)
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let sys = DenseSystem::assemble(g1, g2, &self.vertex_kernel, &self.edge_kernel);
        let operator = sys.system_operator();
        let preconditioner = sys.preconditioner();
        let rhs = sys.rhs();
        let (x, info) = pcg_counted(&operator, &preconditioner, &rhs, &self.options, counters);
        (vecops::dot(&sys.start_product, &x), info)
    }

    /// Compute the full pairwise kernel matrix sequentially (the way the
    /// reference packages are driven in the paper's comparison).
    pub fn gram_matrix<V, E>(&self, graphs: &[Graph<V, E>]) -> Vec<f64>
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let n = graphs.len();
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = self.kernel(&graphs[i], &graphs[j]);
                out[i * n + j] = k;
                out[j * n + i] = k;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::{Graph, GraphBuilder, Unlabeled};
    use mgk_kernels::{KroneckerDelta, SquareExponential, UnitKernel};

    #[test]
    fn matches_the_core_solver_on_unlabeled_graphs() {
        let g1 = Graph::from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let g2 = Graph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let baseline = ExplicitSolver::new(UnitKernel, UnitKernel);
        let reference = baseline.kernel(&g1, &g2);
        let fast = MarginalizedKernelSolver::unlabeled(SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((reference - fast).abs() / reference.abs() < 1e-4, "{reference} vs {fast}");
    }

    #[test]
    fn matches_the_core_solver_on_labeled_graphs() {
        let mut b1: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [1u8, 2, 3, 1] {
            b1.add_vertex(l);
        }
        for (u, v, w, l) in [(0, 1, 1.0, 0.2), (1, 2, 0.5, 1.0), (2, 3, 1.0, 0.6), (3, 0, 0.8, 1.4)]
        {
            b1.add_edge(u, v, w, l).unwrap();
        }
        let g1 = b1.build().unwrap();
        let mut b2: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [2u8, 1, 2] {
            b2.add_vertex(l);
        }
        for (u, v, w, l) in [(0, 1, 1.0, 0.5), (1, 2, 1.0, 1.1)] {
            b2.add_edge(u, v, w, l).unwrap();
        }
        let g2 = b2.build().unwrap();

        let kv = KroneckerDelta::new(0.3);
        let ke = SquareExponential::new(0.8);
        let baseline = ExplicitSolver::new(kv, ke);
        let reference = baseline.kernel(&g1, &g2);
        let fast = MarginalizedKernelSolver::new(kv, ke, SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((reference - fast).abs() / reference.abs() < 1e-4, "{reference} vs {fast}");
    }

    #[test]
    fn gram_matrix_is_symmetric_positive() {
        let graphs: Vec<Graph<Unlabeled, Unlabeled>> = vec![
            Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]),
            Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            Graph::from_edge_list(3, &[(0, 1), (1, 2)]),
        ];
        let baseline = ExplicitSolver::new(UnitKernel, UnitKernel);
        let gram = baseline.gram_matrix(&graphs);
        for i in 0..3 {
            for j in 0..3 {
                assert!(gram[i * 3 + j] > 0.0);
                assert!((gram[i * 3 + j] - gram[j * 3 + i]).abs() < 1e-12);
            }
        }
    }
}
