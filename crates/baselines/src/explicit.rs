//! GraKeL-style explicit solver: materialize the tensor-product system and
//! run a (Jacobi-preconditioned) conjugate gradient iteration on it.

use crate::DenseSystem;
use mgk_graph::Graph;
use mgk_kernels::BaseKernel;

/// Explicit, single-threaded CPU baseline in the style of GraKeL's random
/// walk kernel implementation.
#[derive(Debug, Clone)]
pub struct ExplicitSolver<KV, KE> {
    vertex_kernel: KV,
    edge_kernel: KE,
    /// Relative-residual tolerance of the CG iteration.
    pub tolerance: f64,
    /// Maximum CG iterations.
    pub max_iterations: usize,
}

impl<KV, KE> ExplicitSolver<KV, KE> {
    /// Create the baseline from a pair of base kernels.
    pub fn new(vertex_kernel: KV, edge_kernel: KE) -> Self {
        ExplicitSolver { vertex_kernel, edge_kernel, tolerance: 1e-6, max_iterations: 1000 }
    }

    /// Evaluate the kernel between two graphs.
    pub fn kernel<V, E>(&self, g1: &Graph<V, E>, g2: &Graph<V, E>) -> f64
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let sys = DenseSystem::assemble(g1, g2, &self.vertex_kernel, &self.edge_kernel);
        let dim = sys.dim;
        // system matrix M = diag(dx / vx) - off_diagonal, rhs = dx .* qx
        let diag: Vec<f64> =
            sys.degree_product.iter().zip(&sys.vertex_product).map(|(&d, &v)| d / v).collect();
        let rhs: Vec<f64> =
            sys.degree_product.iter().zip(&sys.stop_product).map(|(&d, &q)| d * q).collect();

        // Jacobi-preconditioned CG in f64 on the explicit matrix
        let matvec = |x: &[f64], y: &mut [f64]| {
            for i in 0..dim {
                let row = &sys.off_diagonal[i * dim..(i + 1) * dim];
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(x) {
                    acc += a * b;
                }
                y[i] = diag[i] * x[i] - acc;
            }
        };

        let b_norm = rhs.iter().map(|x| x * x).sum::<f64>().sqrt();
        if b_norm == 0.0 {
            return 0.0;
        }
        let mut x = vec![0.0f64; dim];
        let mut r = rhs.clone();
        let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
        let mut p = z.clone();
        let mut rho: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0f64; dim];
        for _ in 0..self.max_iterations {
            matvec(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break;
            }
            let alpha = rho / pap;
            for i in 0..dim {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let res = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
            if res <= self.tolerance {
                break;
            }
            for i in 0..dim {
                z[i] = r[i] / diag[i];
            }
            let rho_next: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rho_next / rho;
            rho = rho_next;
            for i in 0..dim {
                p[i] = z[i] + beta * p[i];
            }
        }

        sys.start_product.iter().zip(&x).map(|(&pi, &xi)| pi * xi).sum()
    }

    /// Compute the full pairwise kernel matrix sequentially (the way the
    /// reference packages are driven in the paper's comparison).
    pub fn gram_matrix<V, E>(&self, graphs: &[Graph<V, E>]) -> Vec<f64>
    where
        E: Copy + Default,
        KV: BaseKernel<V>,
        KE: BaseKernel<E>,
    {
        let n = graphs.len();
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = self.kernel(&graphs[i], &graphs[j]);
                out[i * n + j] = k;
                out[j * n + i] = k;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_core::{MarginalizedKernelSolver, SolverConfig};
    use mgk_graph::{Graph, GraphBuilder, Unlabeled};
    use mgk_kernels::{KroneckerDelta, SquareExponential, UnitKernel};

    #[test]
    fn matches_the_core_solver_on_unlabeled_graphs() {
        let g1 = Graph::from_edge_list(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let g2 = Graph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let baseline = ExplicitSolver::new(UnitKernel, UnitKernel);
        let reference = baseline.kernel(&g1, &g2);
        let fast = MarginalizedKernelSolver::unlabeled(SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((reference - fast).abs() / reference.abs() < 1e-4, "{reference} vs {fast}");
    }

    #[test]
    fn matches_the_core_solver_on_labeled_graphs() {
        let mut b1: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [1u8, 2, 3, 1] {
            b1.add_vertex(l);
        }
        for (u, v, w, l) in [(0, 1, 1.0, 0.2), (1, 2, 0.5, 1.0), (2, 3, 1.0, 0.6), (3, 0, 0.8, 1.4)] {
            b1.add_edge(u, v, w, l).unwrap();
        }
        let g1 = b1.build().unwrap();
        let mut b2: GraphBuilder<u8, f32> = GraphBuilder::new();
        for l in [2u8, 1, 2] {
            b2.add_vertex(l);
        }
        for (u, v, w, l) in [(0, 1, 1.0, 0.5), (1, 2, 1.0, 1.1)] {
            b2.add_edge(u, v, w, l).unwrap();
        }
        let g2 = b2.build().unwrap();

        let kv = KroneckerDelta::new(0.3);
        let ke = SquareExponential::new(0.8);
        let baseline = ExplicitSolver::new(kv, ke);
        let reference = baseline.kernel(&g1, &g2);
        let fast = MarginalizedKernelSolver::new(kv, ke, SolverConfig::default())
            .kernel(&g1, &g2)
            .unwrap()
            .value as f64;
        assert!((reference - fast).abs() / reference.abs() < 1e-4, "{reference} vs {fast}");
    }

    #[test]
    fn gram_matrix_is_symmetric_positive() {
        let graphs: Vec<Graph<Unlabeled, Unlabeled>> = vec![
            Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]),
            Graph::from_edge_list(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            Graph::from_edge_list(3, &[(0, 1), (1, 2)]),
        ];
        let baseline = ExplicitSolver::new(UnitKernel, UnitKernel);
        let gram = baseline.gram_matrix(&graphs);
        for i in 0..3 {
            for j in 0..3 {
                assert!(gram[i * 3 + j] > 0.0);
                assert!((gram[i * 3 + j] - gram[j * 3 + i]).abs() < 1e-12);
            }
        }
    }
}
