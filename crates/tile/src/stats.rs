//! Tile occupancy statistics — the quantities visualized in Figs. 6 and 7
//! of the paper.

use crate::octile::{Octile, OctileMatrix, TILE_AREA};

/// Occupancy statistics of an [`OctileMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct TileDensityStats {
    /// Number of non-empty tiles.
    pub nonempty_tiles: usize,
    /// Number of possible tiles, `⌈n/8⌉²`.
    pub possible_tiles: usize,
    /// Fraction of possible tiles that are non-empty (the percentage shown
    /// on the left of Fig. 7).
    pub nonempty_fraction: f64,
    /// Mean fill factor of the non-empty tiles (the "avg. density" marker
    /// of Fig. 7).
    pub mean_density: f64,
    /// Histogram of per-tile fill factors over 16 equal-width bins covering
    /// `(0, 1]` (the density distribution curve of Fig. 7).
    pub density_histogram: [usize; 16],
    /// Total number of nonzero matrix elements.
    pub nonzeros: usize,
}

impl TileDensityStats {
    /// Compute the statistics of an octile matrix.
    pub fn of<E: Copy + Default>(m: &OctileMatrix<E>) -> Self {
        Self::from_tiles(m.tiles(), m.tiles_per_side())
    }

    /// Compute the statistics from a tile list and the tile-grid side
    /// length.
    pub fn from_tiles<E: Copy>(tiles: &[Octile<E>], tiles_per_side: usize) -> Self {
        let nonempty_tiles = tiles.len();
        let possible_tiles = tiles_per_side * tiles_per_side;
        let nonzeros: usize = tiles.iter().map(|t| t.nnz()).sum();
        let mut density_histogram = [0usize; 16];
        let mut density_sum = 0.0f64;
        for t in tiles {
            let d = t.nnz() as f64 / TILE_AREA as f64;
            density_sum += d;
            // nnz in 1..=64 maps to bins 0..16
            let bin = ((t.nnz() - 1) * 16 / TILE_AREA).min(15);
            density_histogram[bin] += 1;
        }
        TileDensityStats {
            nonempty_tiles,
            possible_tiles,
            nonempty_fraction: if possible_tiles == 0 {
                0.0
            } else {
                nonempty_tiles as f64 / possible_tiles as f64
            },
            mean_density: if nonempty_tiles == 0 {
                0.0
            } else {
                density_sum / nonempty_tiles as f64
            },
            density_histogram,
            nonzeros,
        }
    }

    /// Average over per-graph statistics: mean non-empty fraction and mean
    /// density across a dataset (this is how Fig. 7 aggregates each
    /// dataset).
    pub fn aggregate(stats: &[TileDensityStats]) -> TileDensityStats {
        if stats.is_empty() {
            return TileDensityStats {
                nonempty_tiles: 0,
                possible_tiles: 0,
                nonempty_fraction: 0.0,
                mean_density: 0.0,
                density_histogram: [0; 16],
                nonzeros: 0,
            };
        }
        let mut hist = [0usize; 16];
        for s in stats {
            for (h, x) in hist.iter_mut().zip(&s.density_histogram) {
                *h += x;
            }
        }
        TileDensityStats {
            nonempty_tiles: stats.iter().map(|s| s.nonempty_tiles).sum(),
            possible_tiles: stats.iter().map(|s| s.possible_tiles).sum(),
            nonempty_fraction: stats.iter().map(|s| s.nonempty_fraction).sum::<f64>()
                / stats.len() as f64,
            mean_density: stats.iter().map(|s| s.mean_density).sum::<f64>() / stats.len() as f64,
            density_histogram: hist,
            nonzeros: stats.iter().map(|s| s.nonzeros).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::{Graph, Unlabeled};

    #[test]
    fn stats_of_small_path() {
        let g = Graph::from_edge_list(20, &[(0, 1), (1, 2), (8, 9), (16, 17)]);
        let m = OctileMatrix::from_graph(&g.map_labels(|_| Unlabeled, |_| 0.0f32));
        let s = TileDensityStats::of(&m);
        assert_eq!(s.possible_tiles, 9);
        assert_eq!(s.nonempty_tiles, 3); // (0,0), (1,1), (2,2)
        assert!((s.nonempty_fraction - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(s.nonzeros, 8);
        assert_eq!(s.density_histogram.iter().sum::<usize>(), 3);
        // every occupied tile here has at most 4/64 nonzeros -> first bin
        assert_eq!(s.density_histogram[0], 3);
    }

    #[test]
    fn histogram_top_bin_for_full_tile() {
        let edges: Vec<(u32, u32)> =
            (0..8u32).flat_map(|i| ((i + 1)..8).map(move |j| (i, j))).collect();
        let g = Graph::from_edge_list(8, &edges);
        let m = OctileMatrix::from_graph(&g.map_labels(|_| Unlabeled, |_| 0.0f32));
        let s = TileDensityStats::of(&m);
        assert_eq!(s.nonempty_tiles, 1);
        // 56/64 nonzeros (no diagonal) => bin index (55*16/64)=13
        assert_eq!(s.density_histogram[13], 1);
        assert!(s.mean_density > 0.8);
    }

    #[test]
    fn aggregate_averages_fractions() {
        let a = TileDensityStats {
            nonempty_tiles: 2,
            possible_tiles: 4,
            nonempty_fraction: 0.5,
            mean_density: 0.2,
            density_histogram: [0; 16],
            nonzeros: 10,
        };
        let mut b = a.clone();
        b.nonempty_fraction = 1.0;
        b.mean_density = 0.4;
        let agg = TileDensityStats::aggregate(&[a, b]);
        assert!((agg.nonempty_fraction - 0.75).abs() < 1e-12);
        assert!((agg.mean_density - 0.3).abs() < 1e-12);
        assert_eq!(agg.nonzeros, 20);
    }

    #[test]
    fn aggregate_of_empty_slice() {
        let agg = TileDensityStats::aggregate(&[]);
        assert_eq!(agg.nonempty_tiles, 0);
        assert_eq!(agg.nonempty_fraction, 0.0);
    }
}
