//! The octile sparse matrix format of Section IV of the paper.
//!
//! The on-the-fly XMV primitives stream the adjacency and edge-label
//! matrices of the individual graphs by 8×8 square blocks ("octiles").
//! Sparsity is exploited at two levels:
//!
//! * **inter-tile** — only non-empty octiles are stored, in coordinate
//!   (COO) order of their tile row/column;
//! * **intra-tile** — each octile carries a 64-bit occupancy bitmap whose
//!   `i`-th bit marks whether the `i`-th element (row-major within the
//!   tile) is nonzero, and only the nonzero weights/labels are stored in a
//!   packed payload.
//!
//! [`OctileMatrix`] is the storage type; [`TileDensityStats`] produces the
//!   occupancy statistics plotted in Figs. 6 and 7 of the paper.

pub mod octile;
pub mod stats;

pub use octile::{transpose_mask, Octile, OctileMatrix, TILE_AREA, TILE_SIZE};
pub use stats::TileDensityStats;
