//! Octile storage: COO of 8×8 tiles with bitmap-compressed payloads.

use mgk_graph::Graph;

/// Side length of a tile. The paper settles on 8×8 tiles ("octiles") after
/// the parameter study of Section III-D.
pub const TILE_SIZE: usize = 8;

/// Number of elements in a tile.
pub const TILE_AREA: usize = TILE_SIZE * TILE_SIZE;

/// One non-empty 8×8 tile of the adjacency/edge-label matrix.
///
/// The `mask` bit `r * 8 + c` is set when the element at local row `r`,
/// local column `c` is nonzero. `weights[k]` and `labels[k]` store the
/// payload of the `k`-th set bit in ascending bit order.
#[derive(Debug, Clone, PartialEq)]
pub struct Octile<E> {
    /// Tile row index (vertex index / 8).
    pub row: u32,
    /// Tile column index (vertex index / 8).
    pub col: u32,
    /// 64-bit occupancy bitmap, row-major within the tile.
    pub mask: u64,
    /// Packed nonzero adjacency weights.
    pub weights: Vec<f32>,
    /// Packed nonzero edge labels, parallel to `weights`.
    pub labels: Vec<E>,
}

impl<E: Copy> Octile<E> {
    /// Number of nonzero elements in the tile.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Fill factor of the tile in `[0, 1]`.
    #[inline]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / TILE_AREA as f64
    }

    /// Expand the packed weights into a dense row-major 8×8 block — the
    /// "expand in shared memory after loading from global memory" step of
    /// Section IV-B.
    pub fn expand_weights(&self) -> [f32; TILE_AREA] {
        let mut out = [0.0f32; TILE_AREA];
        for (k, pos) in BitIter::new(self.mask).enumerate() {
            out[pos] = self.weights[k];
        }
        out
    }

    /// Expand the packed labels into a dense row-major 8×8 block, with
    /// `fill` in the empty positions.
    pub fn expand_labels(&self, fill: E) -> [E; TILE_AREA] {
        let mut out = [fill; TILE_AREA];
        for (k, pos) in BitIter::new(self.mask).enumerate() {
            out[pos] = self.labels[k];
        }
        out
    }

    /// Expand the packed weights into a dense *column-major* 8×8 block
    /// (`out[c * 8 + r]`), so that one tile row of the transposed panel is
    /// the set of partners a fixed local column multiplies against. The
    /// bitmap-driven kernels in `mgk-core` walk these panels with
    /// fixed-8-lane inner loops.
    pub fn expand_weights_transposed(&self) -> [f32; TILE_AREA] {
        let mut out = [0.0f32; TILE_AREA];
        for (k, pos) in BitIter::new(self.mask).enumerate() {
            out[(pos % TILE_SIZE) * TILE_SIZE + pos / TILE_SIZE] = self.weights[k];
        }
        out
    }

    /// Expand the packed labels into a dense *column-major* 8×8 block
    /// (`out[c * 8 + r]`), with `fill` in the empty positions.
    pub fn expand_labels_transposed(&self, fill: E) -> [E; TILE_AREA] {
        let mut out = [fill; TILE_AREA];
        for (k, pos) in BitIter::new(self.mask).enumerate() {
            out[(pos % TILE_SIZE) * TILE_SIZE + pos / TILE_SIZE] = self.labels[k];
        }
        out
    }

    /// Per-row nonzero masks: byte `r` holds the 8 column-occupancy bits of
    /// local row `r` (the row-major bitmap is little-endian in rows).
    #[inline]
    pub fn row_masks(&self) -> [u8; TILE_SIZE] {
        self.mask.to_le_bytes()
    }

    /// Per-column nonzero masks: byte `c` holds the 8 row-occupancy bits of
    /// local column `c` — the row masks of the bit-transposed tile.
    #[inline]
    pub fn col_masks(&self) -> [u8; TILE_SIZE] {
        transpose_mask(self.mask).to_le_bytes()
    }

    /// Iterate over the nonzero elements as `(local_row, local_col, weight,
    /// label)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32, E)> + '_ {
        BitIter::new(self.mask).enumerate().map(move |(k, pos)| {
            (pos / TILE_SIZE, pos % TILE_SIZE, self.weights[k], self.labels[k])
        })
    }

    /// Weight at local position `(r, c)` or 0 if empty.
    pub fn weight_at(&self, r: usize, c: usize) -> f32 {
        let bit = r * TILE_SIZE + c;
        if self.mask & (1u64 << bit) == 0 {
            return 0.0;
        }
        let rank = (self.mask & ((1u64 << bit) - 1)).count_ones() as usize;
        self.weights[rank]
    }
}

/// Bit-transpose an 8×8 occupancy bitmap: bit `r * 8 + c` of the input
/// becomes bit `c * 8 + r` of the output. Three delta-swap rounds — the
/// classic branch-free 8×8 Boolean-matrix transpose.
#[inline]
pub fn transpose_mask(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Iterator over the set bit positions of a 64-bit mask, in ascending order.
struct BitIter {
    remaining: u64,
}

impl BitIter {
    fn new(mask: u64) -> Self {
        BitIter { remaining: mask }
    }
}

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            None
        } else {
            let pos = self.remaining.trailing_zeros() as usize;
            self.remaining &= self.remaining - 1;
            Some(pos)
        }
    }
}

/// The full two-level sparse representation of a graph's adjacency and
/// edge-label matrices: a COO list of non-empty [`Octile`]s sorted by
/// `(row, col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OctileMatrix<E> {
    dim: usize,
    tiles_per_side: usize,
    tiles: Vec<Octile<E>>,
}

impl<E: Copy + Default> OctileMatrix<E> {
    /// Build the octile representation of a graph's adjacency matrix (with
    /// edge labels riding along), using the graph's current vertex order.
    pub fn from_graph<V>(g: &Graph<V, E>) -> Self {
        let n = g.num_vertices();
        let tiles_per_side = n.div_ceil(TILE_SIZE);
        // bucket edges by tile coordinate: intra-tile bit plus weight/label
        type TileEntries<E> = Vec<(u8, f32, E)>;
        use std::collections::BTreeMap;
        let mut buckets: BTreeMap<(u32, u32), TileEntries<E>> = BTreeMap::new();
        for i in 0..n {
            for e in g.neighbors(i) {
                let j = e.target as usize;
                let (tr, tc) = (i / TILE_SIZE, j / TILE_SIZE);
                let bit = (i % TILE_SIZE) * TILE_SIZE + (j % TILE_SIZE);
                buckets
                    .entry((tr as u32, tc as u32))
                    .or_default()
                    .push((bit as u8, e.weight, *e.label));
            }
        }
        let tiles = buckets
            .into_iter()
            .map(|((row, col), mut entries)| {
                entries.sort_by_key(|&(bit, _, _)| bit);
                let mut mask = 0u64;
                let mut weights = Vec::with_capacity(entries.len());
                let mut labels = Vec::with_capacity(entries.len());
                for (bit, w, l) in entries {
                    debug_assert_eq!(mask & (1u64 << bit), 0, "duplicate entry within tile");
                    mask |= 1u64 << bit;
                    weights.push(w);
                    labels.push(l);
                }
                Octile { row, col, mask, weights, labels }
            })
            .collect();
        OctileMatrix { dim: n, tiles_per_side, tiles }
    }

    /// Matrix dimension (number of vertices of the source graph).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tiles along one side (`⌈n / 8⌉`).
    #[inline]
    pub fn tiles_per_side(&self) -> usize {
        self.tiles_per_side
    }

    /// Number of non-empty tiles stored.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Total number of nonzero matrix elements.
    pub fn num_nonzeros(&self) -> usize {
        self.tiles.iter().map(|t| t.nnz()).sum()
    }

    /// The stored tiles, sorted by `(row, col)`.
    #[inline]
    pub fn tiles(&self) -> &[Octile<E>] {
        &self.tiles
    }

    /// Look up a tile by tile coordinates.
    pub fn tile(&self, row: u32, col: u32) -> Option<&Octile<E>> {
        self.tiles
            .binary_search_by_key(&(row, col), |t| (t.row, t.col))
            .ok()
            .map(|idx| &self.tiles[idx])
    }

    /// Reconstruct the dense adjacency matrix (row-major `n × n`); used for
    /// validation.
    pub fn to_dense_weights(&self) -> Vec<f32> {
        let n = self.dim;
        let mut out = vec![0.0f32; n * n];
        for t in &self.tiles {
            for (r, c, w, _) in t.iter() {
                let (i, j) = (t.row as usize * TILE_SIZE + r, t.col as usize * TILE_SIZE + c);
                if i < n && j < n {
                    out[i * n + j] = w;
                }
            }
        }
        out
    }

    /// Fraction of the `⌈n/8⌉²` possible tiles that are non-empty.
    pub fn fill_fraction(&self) -> f64 {
        if self.tiles_per_side == 0 {
            return 0.0;
        }
        self.num_tiles() as f64 / (self.tiles_per_side * self.tiles_per_side) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgk_graph::{Graph, GraphBuilder, Unlabeled};

    fn labeled_path(n: usize) -> Graph<Unlabeled, f32> {
        let mut b: GraphBuilder<Unlabeled, f32> = GraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(Unlabeled);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1.0 + i as f32, 0.1 * i as f32).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn path_graph_within_one_tile() {
        let g = labeled_path(8);
        let m = OctileMatrix::from_graph(&g);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.tiles_per_side(), 1);
        assert_eq!(m.num_tiles(), 1);
        assert_eq!(m.num_nonzeros(), 14); // 7 undirected edges, both directions
        let t = m.tile(0, 0).unwrap();
        assert_eq!(t.nnz(), 14);
        assert!(t.density() > 0.2 && t.density() < 0.25);
    }

    #[test]
    fn path_graph_spanning_tiles() {
        let g = labeled_path(20);
        let m = OctileMatrix::from_graph(&g);
        assert_eq!(m.tiles_per_side(), 3);
        // a path in natural order touches the diagonal tiles and the
        // super/sub-diagonal corner couplings: (0,0),(0,1),(1,0),(1,1),(1,2),(2,1),(2,2)
        assert_eq!(m.num_tiles(), 7);
        assert_eq!(m.num_nonzeros(), 38);
        assert!(m.tile(0, 2).is_none());
        assert!(m.tile(0, 1).is_some());
    }

    #[test]
    fn dense_round_trip_matches_graph_adjacency() {
        let g = labeled_path(13);
        let m = OctileMatrix::from_graph(&g);
        assert_eq!(m.to_dense_weights(), g.adjacency_dense());
    }

    #[test]
    fn expand_weights_round_trips_packed_payload() {
        let g = labeled_path(10);
        let m = OctileMatrix::from_graph(&g);
        for t in m.tiles() {
            let dense = t.expand_weights();
            assert_eq!(dense.iter().filter(|&&w| w != 0.0).count(), t.nnz());
            for (r, c, w, _) in t.iter() {
                assert_eq!(dense[r * TILE_SIZE + c], w);
                assert_eq!(t.weight_at(r, c), w);
            }
        }
    }

    #[test]
    fn expand_labels_uses_fill_value() {
        let g = labeled_path(9);
        let m = OctileMatrix::from_graph(&g);
        let t = m.tile(0, 0).unwrap();
        let labels = t.expand_labels(-1.0);
        let empties = labels.iter().filter(|&&l| l == -1.0).count();
        assert_eq!(empties, TILE_AREA - t.nnz());
    }

    #[test]
    fn transpose_mask_moves_every_bit() {
        for (r, c) in [(0usize, 0usize), (0, 7), (7, 0), (3, 5), (6, 2)] {
            let m = 1u64 << (r * TILE_SIZE + c);
            assert_eq!(transpose_mask(m), 1u64 << (c * TILE_SIZE + r), "bit ({r},{c})");
        }
        // involution on an arbitrary pattern
        let m = 0x8040_2013_d00f_5a91u64;
        assert_eq!(transpose_mask(transpose_mask(m)), m);
    }

    #[test]
    fn transposed_expansions_match_row_major_expansions() {
        let g = labeled_path(10);
        let m = OctileMatrix::from_graph(&g);
        for t in m.tiles() {
            let w = t.expand_weights();
            let wt = t.expand_weights_transposed();
            let l = t.expand_labels(-7.0);
            let lt = t.expand_labels_transposed(-7.0);
            for r in 0..TILE_SIZE {
                for c in 0..TILE_SIZE {
                    assert_eq!(wt[c * TILE_SIZE + r], w[r * TILE_SIZE + c]);
                    assert_eq!(lt[c * TILE_SIZE + r], l[r * TILE_SIZE + c]);
                }
            }
        }
    }

    #[test]
    fn row_and_col_masks_agree_with_the_bitmap() {
        let g = labeled_path(20);
        let m = OctileMatrix::from_graph(&g);
        for t in m.tiles() {
            let rows = t.row_masks();
            let cols = t.col_masks();
            for (r, &row_mask) in rows.iter().enumerate() {
                for (c, &col_mask) in cols.iter().enumerate() {
                    let set = t.mask & (1u64 << (r * TILE_SIZE + c)) != 0;
                    assert_eq!(row_mask & (1u8 << c) != 0, set);
                    assert_eq!(col_mask & (1u8 << r) != 0, set);
                }
            }
            assert_eq!(
                rows.iter().map(|m| m.count_ones() as usize).sum::<usize>(),
                t.nnz(),
                "row masks must partition the nnz"
            );
        }
    }

    #[test]
    fn weight_at_empty_position_is_zero() {
        let g = labeled_path(8);
        let m = OctileMatrix::from_graph(&g);
        let t = m.tile(0, 0).unwrap();
        assert_eq!(t.weight_at(0, 5), 0.0);
        assert_eq!(t.weight_at(0, 1), 1.0);
    }

    #[test]
    fn symmetry_of_tiles() {
        let g = labeled_path(24);
        let m = OctileMatrix::from_graph(&g);
        // adjacency is symmetric so tile (r,c) non-empty iff (c,r) non-empty
        for t in m.tiles() {
            assert!(
                m.tile(t.col, t.row).is_some(),
                "missing symmetric tile ({}, {})",
                t.col,
                t.row
            );
        }
    }

    #[test]
    fn empty_graph_has_no_tiles() {
        let g: Graph = Graph::from_edge_list(5, &[]);
        let m = OctileMatrix::from_graph(&g);
        assert_eq!(m.num_tiles(), 0);
        assert_eq!(m.num_nonzeros(), 0);
        assert_eq!(m.fill_fraction(), 0.0);
    }

    #[test]
    fn fill_fraction_of_complete_graph_is_one() {
        let edges: Vec<(u32, u32)> =
            (0..16u32).flat_map(|i| ((i + 1)..16).map(move |j| (i, j))).collect();
        let g = Graph::from_edge_list(16, &edges);
        let m = OctileMatrix::from_graph(&g.map_labels(|_| Unlabeled, |_| 0.0f32));
        assert_eq!(m.tiles_per_side(), 2);
        assert_eq!(m.num_tiles(), 4);
        assert!((m.fill_fraction() - 1.0).abs() < 1e-12);
    }
}
