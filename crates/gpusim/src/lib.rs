//! GPU cost-model simulator.
//!
//! The evaluation of the paper rests on a memory-traffic argument: Table I
//! and Appendix C count, for each on-the-fly XMV primitive, the number of
//! global/shared loads and stores and arithmetic operations per CG
//! iteration, and the Roofline model (Figs. 3 and 5) converts those counts
//! into attainable performance on a Volta V100.
//!
//! Because this reproduction runs on CPUs, the GPU never executes — instead
//! this crate reproduces the *model*: device specifications
//! ([`DeviceSpec`]), traffic counters ([`TrafficCounters`]), the analytic
//! per-primitive cost formulas of Table I ([`cost`]), a Roofline model
//! ([`roofline`]), an occupancy model ([`occupancy`]) and a projected-time
//! estimator ([`project`]). The on-the-fly primitives in `mgk-core`
//! increment the same [`TrafficCounters`] while they execute on the CPU, so
//! sparse-dependent traffic (which the closed forms cannot capture) is
//! counted exactly.

pub mod cost;
pub mod device;
pub mod occupancy;
pub mod project;
pub mod roofline;
pub mod traffic;

pub use cost::{octile_pair_traffic, xmv_traffic, OctilePairShape, PrimitiveKind, ProblemShape};
pub use device::DeviceSpec;
pub use occupancy::{occupancy, OccupancyLimits};
pub use project::{estimate_time, Bound, TimeEstimate};
pub use roofline::{RooflineModel, RooflinePoint};
pub use traffic::TrafficCounters;
