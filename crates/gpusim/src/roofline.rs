//! The Roofline model (Williams et al., reference [8]) used in Figs. 3 and
//! 5 of the paper.

use crate::device::DeviceSpec;
use crate::traffic::TrafficCounters;

/// A point on the Roofline plot: a kernel characterized by its arithmetic
/// intensities and its attainable/measured performance.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label of the kernel or configuration.
    pub name: String,
    /// Arithmetic intensity vs. global memory (FLOPs/byte).
    pub ai_global: f64,
    /// Arithmetic intensity vs. shared memory (FLOPs/byte);
    /// `f64::INFINITY` when the kernel performs no shared traffic.
    pub ai_shared: f64,
    /// Attainable performance per SM in GFLOP/s under the Roofline bound.
    pub attainable_gflops_per_sm: f64,
    /// Fraction of the FMA peak that the attainable performance represents.
    pub peak_fraction: f64,
}

/// Roofline model for one device.
#[derive(Debug, Clone)]
pub struct RooflineModel {
    device: DeviceSpec,
}

impl RooflineModel {
    /// Build the model for a device.
    pub fn new(device: DeviceSpec) -> Self {
        RooflineModel { device }
    }

    /// The device the model was built for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Attainable per-SM performance for a kernel limited by global memory
    /// only: `min(peak, AI × BW_global_per_SM)`.
    pub fn attainable_global(&self, ai_global: f64) -> f64 {
        (ai_global * self.device.global_bandwidth_gbs_per_sm())
            .min(self.device.peak_sp_gflops_per_sm())
    }

    /// Attainable per-SM performance for a kernel limited by shared memory
    /// only: `min(peak, AI × BW_shared_per_SM)`.
    pub fn attainable_shared(&self, ai_shared: f64) -> f64 {
        if ai_shared.is_infinite() {
            return self.device.peak_sp_gflops_per_sm();
        }
        (ai_shared * self.device.shared_bandwidth_gbs_per_sm())
            .min(self.device.peak_sp_gflops_per_sm())
    }

    /// Attainable per-SM performance considering both the global and shared
    /// memory roofs (the tighter of the two bounds applies).
    pub fn attainable(&self, ai_global: f64, ai_shared: f64) -> f64 {
        self.attainable_global(ai_global).min(self.attainable_shared(ai_shared))
    }

    /// Arithmetic intensity below which a kernel is global-memory-bound
    /// (the "ridge point" of the global roof).
    pub fn ridge_point_global(&self) -> f64 {
        self.device.peak_sp_gflops_per_sm() / self.device.global_bandwidth_gbs_per_sm()
    }

    /// Arithmetic intensity below which a kernel is shared-memory-bound.
    pub fn ridge_point_shared(&self) -> f64 {
        self.device.peak_sp_gflops_per_sm() / self.device.shared_bandwidth_gbs_per_sm()
    }

    /// Build a Roofline point from measured/modeled traffic counters.
    pub fn point(&self, name: impl Into<String>, counters: &TrafficCounters) -> RooflinePoint {
        let ai_global = counters.arithmetic_intensity_global();
        let ai_shared = counters.arithmetic_intensity_shared();
        let attainable = self.attainable(ai_global, ai_shared);
        RooflinePoint {
            name: name.into(),
            ai_global,
            ai_shared,
            attainable_gflops_per_sm: attainable,
            peak_fraction: attainable / self.device.peak_sp_gflops_per_sm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{xmv_traffic, PrimitiveKind, ProblemShape};

    #[test]
    fn naive_solver_is_memory_bound_at_3_percent() {
        // Section II-D: the naive solver achieves at most ~3% of peak on
        // the V100
        let model = RooflineModel::new(DeviceSpec::volta_v100());
        let frac = model.attainable_global(0.5) / model.device().peak_sp_gflops_per_sm();
        assert!(frac < 0.035, "naive peak fraction {frac}");
        assert!(frac > 0.02);
    }

    #[test]
    fn on_the_fly_reuse_lifts_the_bound() {
        // Fig. 3: with reuse factors c = 4, 16, 64 the unlabeled on-the-fly
        // solver reaches intensities 3c/4 and climbs towards the peak
        let model = RooflineModel::new(DeviceSpec::volta_v100());
        let peak = model.device().peak_sp_gflops_per_sm();
        let fractions: Vec<f64> = [4.0, 16.0, 64.0]
            .iter()
            .map(|c| model.attainable_global(3.0 * c / 4.0) / peak)
            .collect();
        assert!(fractions[0] < fractions[1] && fractions[1] < fractions[2]);
        assert!(fractions[2] > 0.9, "c=64 should be close to compute bound: {}", fractions[2]);
        assert!(fractions[0] < 0.2);
    }

    #[test]
    fn ridge_points_are_ordered() {
        let model = RooflineModel::new(DeviceSpec::volta_v100());
        // shared memory is much faster, so its ridge point is far to the left
        assert!(model.ridge_point_shared() < model.ridge_point_global());
        assert!(model.ridge_point_global() > 15.0);
        assert!(model.ridge_point_shared() < 1.5);
    }

    #[test]
    fn tiling_blocking_point_is_compute_bound_on_v100() {
        let model = RooflineModel::new(DeviceSpec::volta_v100());
        let shape = ProblemShape::unlabeled(72, 72);
        let c = xmv_traffic(PrimitiveKind::TilingBlocking { t: 8, r: 8 }, &shape);
        let p = model.point("octile", &c);
        // Fig. 5 reports ~91% FLOPS efficiency for the (8,8) tiling-blocking
        // primitive; the Roofline bound itself must therefore be higher
        assert!(p.peak_fraction > 0.85, "peak fraction {}", p.peak_fraction);
        let naive = model.point("naive", &xmv_traffic(PrimitiveKind::Naive, &shape));
        assert!(naive.peak_fraction < 0.05);
        assert!(p.attainable_gflops_per_sm > naive.attainable_gflops_per_sm * 10.0);
    }

    #[test]
    fn shared_tiling_is_limited_by_the_shared_roof() {
        let model = RooflineModel::new(DeviceSpec::volta_v100());
        let shape = ProblemShape::unlabeled(72, 72);
        let c = xmv_traffic(PrimitiveKind::SharedTiling { t: 8, r: 8 }, &shape);
        let p = model.point("shared-tiling", &c);
        // bound by shared memory, i.e. the shared bound is the tighter one
        let only_global = model.attainable_global(p.ai_global);
        assert!(p.attainable_gflops_per_sm < only_global);
    }
}
