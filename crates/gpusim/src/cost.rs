//! Analytic per-primitive cost formulas — Table I / Appendix C of the
//! paper.
//!
//! For a pair of dense (fully connected) graphs with `n` and `m` nodes, an
//! edge label of `E` bytes, an edge weight of `F` bytes and a base-kernel
//! evaluation of `X` FLOPs, the tables give closed forms for the number of
//! operations, global loads/stores and shared loads/stores of one on-the-fly
//! Kronecker-product matrix-vector multiplication (one CG iteration).

use crate::traffic::TrafficCounters;

/// Which XMV primitive the cost formula describes (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveKind {
    /// Precomputed product matrix `L×` multiplied row by row (Section II-D).
    Naive,
    /// Shared tiling: `t × r` tiles staged in shared memory (Section III-A).
    SharedTiling {
        /// Tile height (rows owned by a warp).
        t: usize,
        /// Tile width (chunk length streamed per iteration).
        r: usize,
    },
    /// Register blocking: length-`r` chunks staged in registers
    /// (Section III-B).
    RegisterBlocking {
        /// Tile height.
        t: usize,
        /// Chunk length per thread.
        r: usize,
    },
    /// Combined tiling + blocking: `t × t` shared tiles re-staged in
    /// length-`r` register chunks (Section III-C) — the production "octile"
    /// primitive with `t = 8, r = 8`.
    TilingBlocking {
        /// Square tile size.
        t: usize,
        /// Register chunk length.
        r: usize,
    },
}

impl PrimitiveKind {
    /// Display name used by benchmark reports.
    pub fn name(&self) -> String {
        match self {
            PrimitiveKind::Naive => "naive".to_string(),
            PrimitiveKind::SharedTiling { t, r } => format!("shared-tiling({t},{r})"),
            PrimitiveKind::RegisterBlocking { t, r } => format!("register-blocking({t},{r})"),
            PrimitiveKind::TilingBlocking { t, r } => format!("tiling-blocking({t},{r})"),
        }
    }

    /// Asymptotic arithmetic intensity with respect to *global* memory
    /// (the "A.I. Global" row of Table I), in FLOPs per byte.
    pub fn asymptotic_ai_global(&self, e: f64, f: f64, x: f64) -> f64 {
        match *self {
            PrimitiveKind::Naive => 2.0 / f,
            PrimitiveKind::SharedTiling { t, r } | PrimitiveKind::RegisterBlocking { t, r } => {
                let (t, r) = (t as f64, r as f64);
                t * t * x / (t / r * e + (1.0 + t / r) * f)
            }
            PrimitiveKind::TilingBlocking { t, .. } => {
                let t = t as f64;
                t * t * x / (e + 2.0 * f)
            }
        }
    }

    /// Asymptotic arithmetic intensity with respect to *shared* memory
    /// (the "A.I. Shared" row of Table I). The naive primitive performs no
    /// shared-memory traffic and returns infinity.
    pub fn asymptotic_ai_shared(&self, e: f64, f: f64, x: f64) -> f64 {
        match *self {
            PrimitiveKind::Naive => f64::INFINITY,
            PrimitiveKind::SharedTiling { r, .. } => {
                let r = r as f64;
                x / ((1.0 + 1.0 / r) * e + (2.0 + 1.0 / r) * f)
            }
            PrimitiveKind::RegisterBlocking { t, .. } => {
                let t = t as f64;
                x / ((1.0 + 1.0 / (t * t)) * f)
            }
            PrimitiveKind::TilingBlocking { t, r } => {
                let (t, r) = (t as f64, r as f64);
                x / ((1.0 / r + 1.0 / t) * e + (1.0 / r + 1.0 / t) * f)
            }
        }
    }
}

/// The problem shape and cost-model constants of one XMV invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemShape {
    /// Number of nodes of the first graph.
    pub n: usize,
    /// Number of nodes of the second graph.
    pub m: usize,
    /// Byte size of an edge label (`E`).
    pub edge_label_bytes: usize,
    /// Byte size of an edge weight / floating point number (`F`).
    pub float_bytes: usize,
    /// FLOPs per base-kernel evaluation (`X`).
    pub kernel_flops: usize,
}

impl ProblemShape {
    /// The unlabeled model problem of Section II-D: `E = 0`, `F = 4`,
    /// `X = 3`.
    pub fn unlabeled(n: usize, m: usize) -> Self {
        ProblemShape { n, m, edge_label_bytes: 0, float_bytes: 4, kernel_flops: 3 }
    }

    /// A labeled problem with 4-byte edge labels and a square-exponential
    /// edge kernel.
    pub fn labeled_f32(n: usize, m: usize, kernel_flops: usize) -> Self {
        ProblemShape { n, m, edge_label_bytes: 4, float_bytes: 4, kernel_flops }
    }
}

/// Evaluate the Appendix-C cost table of `kind` for a dense graph pair,
/// returning the traffic of one XMV (one CG iteration).
pub fn xmv_traffic(kind: PrimitiveKind, shape: &ProblemShape) -> TrafficCounters {
    let n = shape.n as f64;
    let m = shape.m as f64;
    let e = shape.edge_label_bytes as f64;
    let f = shape.float_bytes as f64;
    let x = shape.kernel_flops as f64;
    let n2m2 = n * n * m * m;
    let n2m = n * n * m;
    let nm = n * m;

    let (ops, ld_g, st_g, ld_s, st_s, kernel_evals) = match kind {
        PrimitiveKind::Naive => {
            // Appendix C, "Naive": the product matrix plus the warp-shared
            // right-hand side, 2 FLOPs (one FMA) per element
            let ld_g = n2m2 * f + n2m2 * f / 32.0;
            (2.0 * n2m2, ld_g, nm * f, 0.0, 0.0, 0.0)
        }
        PrimitiveKind::SharedTiling { t, r } => {
            let (t, r) = (t as f64, r as f64);
            let ld_g = n2m * f / t
                + n2m * e / t
                + n2m2 * f / (r * t)
                + n2m2 * e / (r * t)
                + n2m2 * f / (t * t);
            let st_s = ld_g; // every streamed element is staged in shared memory
            let ld_s = n2m2 * (e + f) / r + n2m2 * f + n2m2 * e + n2m2 * f;
            (n2m2 * x, ld_g, nm * f, ld_s, st_s, n2m2)
        }
        PrimitiveKind::RegisterBlocking { t, r } => {
            let (t, r) = (t as f64, r as f64);
            let ld_g = n2m * f / t
                + n2m * e / t
                + n2m2 * f / (r * t)
                + n2m2 * e / (r * t)
                + n2m2 * f / (t * t);
            let st_s = n2m2 * f / (t * t); // only the right-hand side chunk
            let ld_s = n2m2 * f;
            (n2m2 * x, ld_g, nm * f, ld_s, st_s, n2m2)
        }
        PrimitiveKind::TilingBlocking { t, r } => {
            let (t, r) = (t as f64, r as f64);
            let ld_g = n2m * f / t
                + n2m * e / t
                + n2m2 * f / (t * t)
                + n2m2 * e / (t * t)
                + n2m2 * f / (t * t);
            let st_s = n2m * f / t + n2m * e / t + n2m2 * f / (t * t) + n2m2 * e / (t * t);
            let ld_s = n2m2 * f / t + n2m2 * e / t + n2m2 * f / r + n2m2 * e / r;
            (n2m2 * x, ld_g, nm * f, ld_s, st_s, n2m2)
        }
    };

    TrafficCounters {
        global_load_bytes: ld_g.round() as u64,
        global_store_bytes: st_g.round() as u64,
        shared_load_bytes: ld_s.round() as u64,
        shared_store_bytes: st_s.round() as u64,
        flops: ops.round() as u64,
        kernel_evaluations: kernel_evals.round() as u64,
    }
}

/// The shape of one octile tile-pair product, for the per-pair closed
/// forms of [`octile_pair_traffic`].
///
/// The sparsity-dependent parameters are exactly the quantities the CPU
/// kernels in `mgk-core` know before touching any payload: the per-tile
/// populations and, for the mixed primitive, how many of the dense tile's
/// rows fall inside the matrix (edge tiles are clamped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OctilePairShape {
    /// Both tiles expanded; all `t⁴` products evaluated.
    DenseDense,
    /// The sparser tile iterated per nonzero against the dense tile's
    /// in-range rows.
    DenseSparse {
        /// Nonzeros of the sparser tile.
        nnz_sparse: u64,
        /// Dense-tile rows inside the matrix (`min(t, dim − 8·tile_row)`).
        rows_in_range: u64,
    },
    /// Only `nnz₁ · nnz₂` products formed.
    SparseSparse {
        /// Nonzeros of the first tile.
        nnz1: u64,
        /// Nonzeros of the second tile.
        nnz2: u64,
    },
}

/// Closed-form shared-memory traffic, FLOPs and base-kernel evaluations of
/// one 8×8 tile-pair product (Section IV-B), attributing what the Appendix-C
/// table attributes per term: `label_bytes`/`float_bytes` are the stored
/// `E`/`F` sizes, `vector_bytes` the right-hand-side scalar width and
/// `kernel_flops` the per-evaluation cost `X`.
///
/// Global traffic is *not* included — tile streaming is accounted at the
/// operator layer, where compact storage and block sharing apply. The
/// tile-pair kernels in `mgk-core` accumulate exactly these counters, so a
/// test can hold the measured totals against this model.
pub fn octile_pair_traffic(
    shape: OctilePairShape,
    label_bytes: u64,
    float_bytes: u64,
    vector_bytes: u64,
    kernel_flops: u64,
) -> TrafficCounters {
    const T: u64 = 8;
    let (eb, fb, vb, x) = (label_bytes, float_bytes, vector_bytes, kernel_flops);
    let mut c = TrafficCounters::new();
    match shape {
        OctilePairShape::SparseSparse { nnz1, nnz2 } => {
            let prods = nnz1 * nnz2;
            c.flops = prods * x;
            c.kernel_evaluations = prods;
            c.shared_load_bytes = prods * (2 * (fb + eb) + vb);
        }
        OctilePairShape::DenseSparse { nnz_sparse, rows_in_range } => {
            // the dense tile is expanded into shared memory once, then every
            // in-range dense slot is visited per sparse nonzero
            let elems = nnz_sparse * rows_in_range * T;
            c.flops = elems * x;
            c.kernel_evaluations = elems;
            c.shared_load_bytes = elems * (fb + eb + vb);
            c.shared_store_bytes = T * T * (fb + eb);
        }
        OctilePairShape::DenseDense => {
            // both tiles expanded; the full t⁴ block is evaluated with the
            // tiling-blocking reuse pattern (~2(E+F)/t bytes per term)
            let full = T * T * T * T;
            c.flops = full * x;
            c.kernel_evaluations = full;
            c.shared_load_bytes = full * (fb + eb) * 2 / T;
            c.shared_store_bytes = 2 * T * T * (fb + eb);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNLABELED: (f64, f64, f64) = (0.0, 4.0, 3.0);

    #[test]
    fn octile_pair_closed_forms_scale_with_population() {
        let ss =
            octile_pair_traffic(OctilePairShape::SparseSparse { nnz1: 3, nnz2: 5 }, 4, 4, 4, 11);
        assert_eq!(ss.kernel_evaluations, 15);
        assert_eq!(ss.flops, 15 * 11);
        assert_eq!(ss.shared_load_bytes, 15 * (2 * 8 + 4));
        assert_eq!(ss.shared_store_bytes, 0);

        let ds = octile_pair_traffic(
            OctilePairShape::DenseSparse { nnz_sparse: 4, rows_in_range: 6 },
            4,
            4,
            8,
            11,
        );
        assert_eq!(ds.kernel_evaluations, 4 * 6 * 8);
        assert_eq!(ds.flops, 4 * 6 * 8 * 11);
        assert_eq!(ds.shared_load_bytes, 4 * 6 * 8 * (4 + 4 + 8));
        assert_eq!(ds.shared_store_bytes, 64 * 8);

        let dd = octile_pair_traffic(OctilePairShape::DenseDense, 0, 4, 4, 3);
        assert_eq!(dd.kernel_evaluations, 4096);
        assert_eq!(dd.flops, 4096 * 3);
        assert_eq!(dd.shared_load_bytes, 4096 * 4 * 2 / 8);
        assert_eq!(dd.shared_store_bytes, 2 * 64 * 4);
    }

    #[test]
    fn naive_intensity_matches_section_2d() {
        // the naive solver's arithmetic intensity is 2/F = 1/2 in single
        // precision (Section II-D)
        let ai = PrimitiveKind::Naive.asymptotic_ai_global(UNLABELED.0, UNLABELED.1, UNLABELED.2);
        assert!((ai - 0.5).abs() < 1e-12);
        let shape = ProblemShape::unlabeled(72, 72);
        let c = xmv_traffic(PrimitiveKind::Naive, &shape);
        // measured intensity approaches the asymptote for a 72x72 pair
        assert!((c.arithmetic_intensity_global() - 0.5).abs() < 0.02);
    }

    #[test]
    fn octile_primitive_intensity() {
        // tiling-blocking with t=8 in the unlabeled case: t²X / (E + 2F) =
        // 64*3/8 = 24 flops per byte of global traffic
        let k = PrimitiveKind::TilingBlocking { t: 8, r: 8 };
        let ai = k.asymptotic_ai_global(UNLABELED.0, UNLABELED.1, UNLABELED.2);
        assert!((ai - 24.0).abs() < 1e-12);
        // shared intensity: X / ((1/r + 1/t)(E + F)) = 3 / (0.25*4) = 3
        let ai_s = k.asymptotic_ai_shared(UNLABELED.0, UNLABELED.1, UNLABELED.2);
        assert!((ai_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counted_traffic_approaches_asymptotic_intensity() {
        let shape = ProblemShape::unlabeled(72, 72);
        for kind in [
            PrimitiveKind::SharedTiling { t: 8, r: 8 },
            PrimitiveKind::RegisterBlocking { t: 8, r: 8 },
            PrimitiveKind::TilingBlocking { t: 8, r: 8 },
        ] {
            let c = xmv_traffic(kind, &shape);
            let measured = c.arithmetic_intensity_global();
            let asymptotic = kind.asymptotic_ai_global(0.0, 4.0, 3.0);
            let rel = (measured - asymptotic).abs() / asymptotic;
            // the lower-order O(n²m) terms make the measured value smaller,
            // but it should be within ~20% for 72-node graphs
            assert!(
                rel < 0.2,
                "{}: measured {measured:.2} vs asymptotic {asymptotic:.2}",
                kind.name()
            );
            assert!(measured <= asymptotic + 1e-9);
        }
    }

    #[test]
    fn bigger_tiles_give_higher_global_intensity() {
        let shape = ProblemShape::labeled_f32(96, 96, 11);
        let small = xmv_traffic(PrimitiveKind::TilingBlocking { t: 4, r: 4 }, &shape);
        let large = xmv_traffic(PrimitiveKind::TilingBlocking { t: 8, r: 8 }, &shape);
        assert!(
            large.arithmetic_intensity_global() > small.arithmetic_intensity_global(),
            "8x8 tiles should be more intense than 4x4"
        );
        // FLOP count is identical — only data movement changes
        assert_eq!(small.flops, large.flops);
    }

    #[test]
    fn on_the_fly_primitives_trade_flops_for_traffic() {
        let shape = ProblemShape::unlabeled(72, 72);
        let naive = xmv_traffic(PrimitiveKind::Naive, &shape);
        let otf = xmv_traffic(PrimitiveKind::TilingBlocking { t: 8, r: 8 }, &shape);
        // more arithmetic (X=3 vs 2 per term) but far less global traffic
        assert!(otf.flops > naive.flops);
        assert!(otf.global_load_bytes * 10 < naive.global_load_bytes);
    }

    #[test]
    fn register_blocking_with_larger_r_reduces_global_traffic() {
        let shape = ProblemShape::unlabeled(72, 72);
        let r4 = xmv_traffic(PrimitiveKind::RegisterBlocking { t: 8, r: 4 }, &shape);
        let r16 = xmv_traffic(PrimitiveKind::RegisterBlocking { t: 8, r: 16 }, &shape);
        assert!(r16.global_load_bytes < r4.global_load_bytes);
    }

    #[test]
    fn shared_tiling_ai_shared_matches_table() {
        // X / ((1 + 1/r)E + (2 + 1/r)F) with unlabeled params and r=8:
        // 3 / (2.125 * 4) = 0.3529…
        let k = PrimitiveKind::SharedTiling { t: 8, r: 8 };
        let ai = k.asymptotic_ai_shared(0.0, 4.0, 3.0);
        assert!((ai - 3.0 / 8.5).abs() < 1e-9);
    }
}
