//! A simplified CUDA occupancy model.
//!
//! Section III-D of the paper attributes the collapse of the
//! register-blocking primitive at `r = 24` to register spilling, and
//! Section V argues that tiles larger than one octile per warp would
//! constrain occupancy. This module models the three classic occupancy
//! limiters — registers, shared memory and the resident-warp ceiling — so
//! that the benchmark harness can reproduce those effects qualitatively.

use crate::device::DeviceSpec;

/// Resource usage of one thread block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyLimits {
    /// Threads per block.
    pub threads_per_block: usize,
    /// Registers used per thread.
    pub registers_per_thread: usize,
    /// Shared memory bytes used per block.
    pub shared_bytes_per_block: usize,
}

/// Hardware ceiling on registers per thread before the compiler spills to
/// local memory (255 on Volta/Pascal).
pub const MAX_REGISTERS_PER_THREAD: usize = 255;

/// Fraction of the maximum resident warps per SM that a kernel with the
/// given resource usage can sustain, in `(0, 1]`. Returns 0 when the block
/// does not fit on an SM at all.
pub fn occupancy(device: &DeviceSpec, limits: &OccupancyLimits) -> f64 {
    let warps_per_block = limits.threads_per_block.div_ceil(device.warp_size);
    if warps_per_block == 0 {
        return 0.0;
    }

    // blocks per SM limited by registers
    let regs_per_block = limits.registers_per_thread.min(MAX_REGISTERS_PER_THREAD)
        * warps_per_block
        * device.warp_size;
    let by_regs = device.registers_per_sm.checked_div(regs_per_block).unwrap_or(usize::MAX);

    // blocks per SM limited by shared memory
    let by_shared = device
        .shared_capacity_per_sm
        .checked_div(limits.shared_bytes_per_block)
        .unwrap_or(usize::MAX);

    // blocks per SM limited by the warp ceiling
    let by_warps = device.max_warps_per_sm / warps_per_block;

    let blocks = by_regs.min(by_shared).min(by_warps);
    if blocks == 0 {
        return 0.0;
    }
    let resident_warps = (blocks * warps_per_block).min(device.max_warps_per_sm);
    resident_warps as f64 / device.max_warps_per_sm as f64
}

/// Estimate the register demand of the register-blocking primitive with
/// chunk length `r`: the running accumulators, the staged chunk of the
/// second graph's weights/labels and loop bookkeeping all live in
/// registers. The constants follow the paper's observation that the
/// primitive spills "right before it reaches the top of the Roofline model
/// with r = 24".
pub fn register_blocking_registers(r: usize, labeled: bool) -> usize {
    let per_element = if labeled { 4 } else { 2 };
    40 + per_element * 2 * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_with_modest_resources() {
        let d = DeviceSpec::volta_v100();
        let o = occupancy(
            &d,
            &OccupancyLimits {
                threads_per_block: 256,
                registers_per_thread: 32,
                shared_bytes_per_block: 4096,
            },
        );
        assert!((o - 1.0).abs() < 1e-12, "expected full occupancy, got {o}");
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        let d = DeviceSpec::volta_v100();
        let lo = occupancy(
            &d,
            &OccupancyLimits {
                threads_per_block: 256,
                registers_per_thread: 128,
                shared_bytes_per_block: 0,
            },
        );
        let hi = occupancy(
            &d,
            &OccupancyLimits {
                threads_per_block: 256,
                registers_per_thread: 32,
                shared_bytes_per_block: 0,
            },
        );
        assert!(lo < hi);
        assert!(lo <= 0.5);
    }

    #[test]
    fn shared_memory_pressure_reduces_occupancy() {
        let d = DeviceSpec::volta_v100();
        let o = occupancy(
            &d,
            &OccupancyLimits {
                threads_per_block: 64,
                registers_per_thread: 32,
                shared_bytes_per_block: 48 * 1024,
            },
        );
        // only two such blocks fit per SM -> 4 warps resident out of 64
        assert!(o <= 4.0 / 64.0 + 1e-12);
        assert!(o > 0.0);
    }

    #[test]
    fn oversized_block_cannot_run() {
        let d = DeviceSpec::volta_v100();
        let o = occupancy(
            &d,
            &OccupancyLimits {
                threads_per_block: 1024,
                registers_per_thread: 32,
                shared_bytes_per_block: 200 * 1024,
            },
        );
        assert_eq!(o, 0.0);
    }

    #[test]
    fn register_blocking_model_spills_around_r_24() {
        // r = 8 stays comfortable, r = 24 approaches the hardware limit as
        // described in Section III-D
        assert!(register_blocking_registers(8, false) < 128);
        assert!(register_blocking_registers(24, false) >= 128);
        assert!(register_blocking_registers(24, true) > 200);
    }
}
