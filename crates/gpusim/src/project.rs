//! Projected execution time from traffic counters and a device model.
//!
//! The projection follows the Roofline logic: the kernel takes at least as
//! long as its arithmetic at peak throughput, its global traffic at peak
//! device bandwidth and its shared traffic at peak shared bandwidth — the
//! largest of the three bounds dominates. Occupancy derates the achievable
//! arithmetic throughput (an SM that cannot keep enough warps in flight
//! cannot reach peak issue rate).

use crate::device::DeviceSpec;
use crate::traffic::TrafficCounters;

/// What limits the projected execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Limited by arithmetic throughput.
    Compute,
    /// Limited by device (global) memory bandwidth.
    GlobalMemory,
    /// Limited by shared memory bandwidth.
    SharedMemory,
}

/// Breakdown of a projected execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeEstimate {
    /// Time needed by the arithmetic alone, in seconds.
    pub compute_seconds: f64,
    /// Time needed by the global-memory traffic alone, in seconds.
    pub global_seconds: f64,
    /// Time needed by the shared-memory traffic alone, in seconds.
    pub shared_seconds: f64,
    /// The projected execution time (maximum of the three), in seconds.
    pub total_seconds: f64,
    /// Which resource dominates.
    pub bound: Bound,
    /// Achieved fraction of device peak FLOP throughput.
    pub flops_efficiency: f64,
}

/// Project the execution time of a kernel with the given aggregate traffic
/// on `device`, assuming the whole device is available and the kernel runs
/// at `occupancy ∈ (0, 1]` of peak issue rate.
pub fn estimate_time(
    device: &DeviceSpec,
    counters: &TrafficCounters,
    occupancy: f64,
) -> TimeEstimate {
    let occ = occupancy.clamp(1e-3, 1.0);
    // an SM needs a reasonable number of resident warps to hide latency;
    // beyond ~50% occupancy the issue rate is typically saturated
    let issue_derate = (occ * 2.0).min(1.0);
    let peak_flops = device.peak_sp_gflops() * 1e9 * issue_derate;
    let global_bw = device.global_bandwidth_gbs * 1e9;
    let shared_bw = device.shared_bandwidth_gbs() * 1e9;

    let compute_seconds = counters.flops as f64 / peak_flops;
    let global_seconds = counters.global_bytes() as f64 / global_bw;
    let shared_seconds = counters.shared_bytes() as f64 / shared_bw;
    let total_seconds = compute_seconds.max(global_seconds).max(shared_seconds).max(1e-12);
    let bound = if total_seconds == compute_seconds {
        Bound::Compute
    } else if total_seconds == global_seconds {
        Bound::GlobalMemory
    } else {
        Bound::SharedMemory
    };
    TimeEstimate {
        compute_seconds,
        global_seconds,
        shared_seconds,
        total_seconds,
        bound,
        flops_efficiency: (counters.flops as f64 / total_seconds) / (device.peak_sp_gflops() * 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{xmv_traffic, PrimitiveKind, ProblemShape};

    fn per_pair(kind: PrimitiveKind) -> TrafficCounters {
        xmv_traffic(kind, &ProblemShape::unlabeled(72, 72))
    }

    #[test]
    fn naive_is_global_memory_bound() {
        let d = DeviceSpec::volta_v100();
        let est = estimate_time(&d, &per_pair(PrimitiveKind::Naive), 1.0);
        assert_eq!(est.bound, Bound::GlobalMemory);
        assert!(est.flops_efficiency < 0.05);
    }

    #[test]
    fn octile_primitive_is_much_faster_than_naive() {
        let d = DeviceSpec::volta_v100();
        // 5120 pairs of 72-node graphs, as in Fig. 5
        let naive = estimate_time(&d, &per_pair(PrimitiveKind::Naive).scaled(5120), 1.0);
        let octile = estimate_time(
            &d,
            &per_pair(PrimitiveKind::TilingBlocking { t: 8, r: 8 }).scaled(5120),
            1.0,
        );
        assert!(octile.total_seconds * 3.0 < naive.total_seconds);
        assert!(octile.flops_efficiency > 0.5);
    }

    #[test]
    fn ordering_of_primitives_matches_figure_5() {
        // walltime: tiling-blocking < register-blocking(8,8) and
        // shared-tiling(8,8); all beat the naive kernel
        let d = DeviceSpec::volta_v100();
        let time = |k| estimate_time(&d, &per_pair(k).scaled(5120), 1.0).total_seconds;
        let naive = time(PrimitiveKind::Naive);
        let shared = time(PrimitiveKind::SharedTiling { t: 8, r: 8 });
        let reg = time(PrimitiveKind::RegisterBlocking { t: 8, r: 8 });
        let octile = time(PrimitiveKind::TilingBlocking { t: 8, r: 8 });
        assert!(octile < shared, "octile {octile} vs shared {shared}");
        assert!(octile < reg, "octile {octile} vs register {reg}");
        assert!(shared < naive && reg < naive);
    }

    #[test]
    fn low_occupancy_slows_compute_bound_kernels() {
        let d = DeviceSpec::volta_v100();
        let c = per_pair(PrimitiveKind::TilingBlocking { t: 8, r: 8 });
        let full = estimate_time(&d, &c, 1.0);
        let starved = estimate_time(&d, &c, 0.1);
        assert!(starved.total_seconds > full.total_seconds);
    }

    #[test]
    fn on_the_fly_gain_is_larger_on_the_bandwidth_starved_pascal_card() {
        // Section III-D compares against a Titan X Pascal: with GDDR memory
        // the global-bandwidth-bound naive kernel suffers relatively more,
        // so regenerating the product on the fly pays off even more there.
        let volta = DeviceSpec::volta_v100();
        let pascal = DeviceSpec::titan_x_pascal();
        let speedup = |d: &DeviceSpec| {
            let naive = estimate_time(d, &per_pair(PrimitiveKind::Naive), 1.0).total_seconds;
            let octile =
                estimate_time(d, &per_pair(PrimitiveKind::TilingBlocking { t: 8, r: 8 }), 1.0)
                    .total_seconds;
            naive / octile
        };
        assert!(speedup(&pascal) > speedup(&volta));
        assert!(speedup(&volta) > 10.0);
    }
}
