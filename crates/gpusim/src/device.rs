//! GPU device specifications used by the Roofline and time-projection
//! models.

/// Hardware parameters of a GPU, at the granularity the paper's Roofline
//  analysis needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "Tesla V100".
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Sustained SM clock in GHz.
    pub clock_ghz: f64,
    /// FP32 lanes (CUDA cores) per SM.
    pub fp32_lanes_per_sm: usize,
    /// Aggregate device (HBM/GDDR) memory bandwidth in GB/s.
    pub global_bandwidth_gbs: f64,
    /// Shared-memory bytes per SM per clock cycle (128 B/clk on Volta and
    /// Pascal).
    pub shared_bytes_per_clock_per_sm: f64,
    /// Threads per warp.
    pub warp_size: usize,
    /// Register file size per SM, in 32-bit registers.
    pub registers_per_sm: usize,
    /// Shared memory capacity per SM in bytes.
    pub shared_capacity_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
}

impl DeviceSpec {
    /// The Tesla V100 (Volta) configuration used by the paper's benchmarks
    /// on Summit. Microarchitectural constants follow Jia et al.,
    /// "Dissecting the NVIDIA Volta GPU Architecture via Microbenchmarking"
    /// (reference [7]).
    pub fn volta_v100() -> Self {
        DeviceSpec {
            name: "Tesla V100 (Volta)".to_string(),
            num_sms: 80,
            clock_ghz: 1.53,
            fp32_lanes_per_sm: 64,
            global_bandwidth_gbs: 900.0,
            shared_bytes_per_clock_per_sm: 128.0,
            warp_size: 32,
            registers_per_sm: 65_536,
            shared_capacity_per_sm: 96 * 1024,
            max_warps_per_sm: 64,
        }
    }

    /// The Titan X (Pascal) card used for the paper's secondary comparison
    /// in Section III-D (GDDR5X memory, lower bandwidth-to-compute ratio).
    pub fn titan_x_pascal() -> Self {
        DeviceSpec {
            name: "Titan X (Pascal)".to_string(),
            num_sms: 28,
            clock_ghz: 1.417,
            fp32_lanes_per_sm: 128,
            global_bandwidth_gbs: 480.0,
            shared_bytes_per_clock_per_sm: 128.0,
            warp_size: 32,
            registers_per_sm: 65_536,
            shared_capacity_per_sm: 96 * 1024,
            max_warps_per_sm: 64,
        }
    }

    /// Peak single-precision throughput in GFLOP/s assuming every
    /// instruction is a fused multiply-add (2 FLOPs per lane per clock).
    pub fn peak_sp_gflops(&self) -> f64 {
        self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_ghz
    }

    /// Peak single-precision throughput when no FMA pairing is possible
    /// (the "No FMA" roof of Fig. 3).
    pub fn peak_sp_gflops_no_fma(&self) -> f64 {
        self.peak_sp_gflops() / 2.0
    }

    /// Peak throughput per SM in GFLOP/s (the y-axis of Figs. 3 and 5).
    pub fn peak_sp_gflops_per_sm(&self) -> f64 {
        self.peak_sp_gflops() / self.num_sms as f64
    }

    /// Aggregate shared-memory bandwidth in GB/s.
    pub fn shared_bandwidth_gbs(&self) -> f64 {
        self.num_sms as f64 * self.shared_bytes_per_clock_per_sm * self.clock_ghz
    }

    /// Shared-memory bandwidth per SM in GB/s.
    pub fn shared_bandwidth_gbs_per_sm(&self) -> f64 {
        self.shared_bytes_per_clock_per_sm * self.clock_ghz
    }

    /// Global-memory bandwidth per SM in GB/s.
    pub fn global_bandwidth_gbs_per_sm(&self) -> f64 {
        self.global_bandwidth_gbs / self.num_sms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peaks_match_published_figures() {
        let d = DeviceSpec::volta_v100();
        // ~15.7 TFLOP/s single precision
        assert!((d.peak_sp_gflops() - 15_667.2).abs() < 1.0);
        assert!((d.peak_sp_gflops_no_fma() - 7_833.6).abs() < 1.0);
        // ~196 GFLOP/s per SM — the "Peak SP" roof of Fig. 3
        assert!((d.peak_sp_gflops_per_sm() - 195.84).abs() < 0.1);
        // the paper quotes >10^4 GB/s of aggregate shared bandwidth
        assert!(d.shared_bandwidth_gbs() > 1.0e4);
        assert!(d.global_bandwidth_gbs_per_sm() < 12.0);
    }

    #[test]
    fn titan_x_is_more_memory_starved_than_v100() {
        let v = DeviceSpec::volta_v100();
        let t = DeviceSpec::titan_x_pascal();
        // FLOPs per byte of global bandwidth is higher on the GDDR card,
        // which is why the paper finds shared tiling relatively better there
        let ratio_v = v.peak_sp_gflops() / v.global_bandwidth_gbs;
        let ratio_t = t.peak_sp_gflops() / t.global_bandwidth_gbs;
        assert!(ratio_t > ratio_v);
    }
}
