//! Memory-traffic and operation counters (re-export).
//!
//! [`TrafficCounters`] lives in `mgk-linalg` so the
//! [`LinearOperator`](mgk_linalg::LinearOperator) surface and the CG/PCG
//! solvers can thread counters through every operator application; this
//! module re-exports it under the historical `mgk_gpusim::traffic` path for
//! the cost model and everything built on top of it.

pub use mgk_linalg::TrafficCounters;
